//! The event queue: a hierarchical timer wheel over (time, sequence) with
//! deterministic FIFO tie-breaking, so simulations replay identically.
//!
//! # Why a wheel
//!
//! The queue used to be a `BinaryHeap`, which pays O(log n) pointer-chasing
//! comparisons per schedule and per pop — heap churn that dominates the
//! event loop once the fleet holds hundreds of thousands of in-flight
//! timers. The wheel replaces it with a radix structure over the timestamp
//! bits: O(1) schedule, O(1) amortized pop, and memory proportional to the
//! number of *pending* events, not the fleet size.
//!
//! # Layout
//!
//! A timestamp maps to a 64-bit key via `f64::to_bits` — for the
//! non-negative finite values [`SimTime`] admits, the IEEE-754 bit pattern
//! is monotone in the value, so key order is exactly time order (and equal
//! times share one key). The wheel has 8 levels of 256 slots, one level per
//! key byte. An event lives at level ℓ, slot `byte_ℓ(key)`, where ℓ is the
//! *highest* byte in which its key differs from the current clock key:
//! near-future events sit in level 0 (where every entry in a slot shares
//! the exact key), far-future events sit high. When the clock must advance,
//! the lowest occupied level's first occupied slot is drained and its
//! entries re-inserted relative to the new clock — each event can only move
//! to strictly lower levels, so it relocates at most 7 times over its
//! lifetime (the O(1) amortized bound). Entries that land *on* the clock
//! key go to a `due` list, sorted by sequence number, preserving the exact
//! `(time, seq)` total order of the old heap.
//!
//! Snapshots serialize the pending set in sequence-number order — the same
//! canonical form the heap used — so checkpoint bytes and restore semantics
//! are unchanged.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

const LEVELS: usize = 8;
const SLOTS: usize = 256;
/// Occupancy bitmap words per level (256 slots / 64 bits).
const WORDS: usize = SLOTS / 64;

/// Order-preserving key for a [`SimTime`]: the IEEE-754 bit pattern, with
/// negative zero normalized so the map is injective on admitted values.
fn time_key(t: SimTime) -> u64 {
    let s = t.as_secs();
    if s == 0.0 {
        0
    } else {
        s.to_bits()
    }
}

fn byte_of(key: u64, level: usize) -> usize {
    ((key >> (8 * level)) & 0xff) as usize
}

struct Entry<E> {
    key: u64,
    seq: u64,
    time: SimTime,
    event: E,
}

/// A scheduled event rejected for lying in the simulation's past. Carries
/// the full context — the frozen clock, the offending timestamp and the
/// event itself — so the violation is diagnosable at the call site.
pub struct ScheduleError<E> {
    /// The simulation "now" (time of the most recently popped event).
    pub now: SimTime,
    /// The offending timestamp, strictly before `now`.
    pub time: SimTime,
    /// The rejected event, returned to the caller.
    pub event: E,
}

impl<E: fmt::Debug> fmt::Display for ScheduleError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheduling at {:?} before current time {:?} (event: {:?})",
            self.time, self.now, self.event
        )
    }
}

impl<E: fmt::Debug> fmt::Debug for ScheduleError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl<E: fmt::Debug> std::error::Error for ScheduleError<E> {}

/// Discrete-event queue delivering events in nondecreasing time order, FIFO
/// among equal timestamps. Implemented as a hierarchical timer wheel (see
/// the module docs); the public contract is identical to the historical
/// binary-heap queue, pinned by the property tests below.
pub struct EventQueue<E> {
    /// `LEVELS × SLOTS` buckets, flattened: `slots[level * SLOTS + slot]`.
    slots: Vec<Vec<Entry<E>>>,
    /// One bit per slot, per level, for O(1) next-occupied-slot scans.
    occupancy: [[u64; WORDS]; LEVELS],
    /// Events at exactly the current clock key, sorted by `seq`; popped
    /// from the front. Refilled by [`cascade`](Self::cascade) only when
    /// empty, so appends (which carry fresh, maximal seqs) keep it sorted.
    due: VecDeque<Entry<E>>,
    /// Key of the wheel's placement reference; equals
    /// `time_key(last_popped)` at every pop boundary.
    current_key: u64,
    len: usize,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [[0; WORDS]; LEVELS],
            due: VecDeque::new(),
            current_key: 0,
            len: 0,
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `event` at absolute time `time`. Scheduling earlier than the
    /// last popped event is a logic error (it would be delivered "in the
    /// past") and panics with the full [`ScheduleError`] context; use
    /// [`try_schedule`](Self::try_schedule) to handle it as a value.
    pub fn schedule(&mut self, time: SimTime, event: E)
    where
        E: fmt::Debug,
    {
        if let Err(e) = self.try_schedule(time, event) {
            panic!("{e}");
        }
    }

    /// [`schedule`](Self::schedule), reporting a past-time violation as an
    /// error carrying the clock, the offending time and the event instead
    /// of panicking.
    pub fn try_schedule(&mut self, time: SimTime, event: E) -> Result<(), ScheduleError<E>> {
        if time < self.last_popped {
            return Err(ScheduleError { now: self.last_popped, time, event });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Entry { key: time_key(time), seq, time, event });
        Ok(())
    }

    /// Place an entry relative to `current_key`. The entry's key must be
    /// `>= current_key` (guaranteed by the monotone schedule check and by
    /// cascade invariants).
    fn insert(&mut self, entry: Entry<E>) {
        debug_assert!(entry.key >= self.current_key, "entry key below the wheel clock");
        self.len += 1;
        let diff = entry.key ^ self.current_key;
        if diff == 0 {
            // Exactly on the clock: due now. Appends arrive in increasing
            // seq order (fresh schedules and seq-sorted snapshot replays),
            // keeping the list sorted.
            self.due.push_back(entry);
            return;
        }
        let level = (63 - diff.leading_zeros() as usize) / 8;
        let slot = byte_of(entry.key, level);
        self.slots[level * SLOTS + slot].push(entry);
        self.occupancy[level][slot / 64] |= 1 << (slot % 64);
    }

    /// First occupied slot index at `level`, if any.
    fn first_occupied(&self, level: usize) -> Option<usize> {
        for (w, &bits) in self.occupancy[level].iter().enumerate() {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    fn drain_slot(&mut self, level: usize, slot: usize) -> Vec<Entry<E>> {
        self.occupancy[level][slot / 64] &= !(1 << (slot % 64));
        std::mem::take(&mut self.slots[level * SLOTS + slot])
    }

    /// Advance the wheel to the next pending key, refilling `due`. Called
    /// only when `due` is empty; no-op when the wheel is empty.
    fn cascade(&mut self) {
        debug_assert!(self.due.is_empty());
        for level in 0..LEVELS {
            let Some(slot) = self.first_occupied(level) else { continue };
            debug_assert!(
                slot > byte_of(self.current_key, level),
                "occupied slot at or below the clock cursor"
            );
            let mut entries = self.drain_slot(level, slot);
            if level == 0 {
                // Level-0 slots hold exactly one key (all bytes above byte 0
                // match the clock): the whole slot becomes due.
                self.current_key = (self.current_key & !0xff) | slot as u64;
                debug_assert!(entries.iter().all(|e| e.key == self.current_key));
                entries.sort_unstable_by_key(|e| e.seq);
                self.due.extend(entries);
            } else {
                // Higher level: the slot's minimum key is the global
                // minimum. Advance the clock to it and re-insert the rest
                // relative to the new clock — every entry moves to a
                // strictly lower level, bounding total relocations.
                let min_key = entries.iter().map(|e| e.key).min().expect("occupied slot empty");
                self.current_key = min_key;
                self.len -= entries.len();
                let mut now_due: Vec<Entry<E>> = Vec::new();
                for e in entries {
                    if e.key == min_key {
                        now_due.push(e);
                    } else {
                        self.insert(e);
                    }
                }
                self.len += now_due.len();
                now_due.sort_unstable_by_key(|e| e.seq);
                self.due.extend(now_due);
            }
            return;
        }
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.due.is_empty() {
            self.cascade();
        }
        let e = self.due.pop_front()?;
        self.len -= 1;
        debug_assert!(e.time >= self.last_popped, "wheel violated monotonicity");
        self.last_popped = e.time;
        Some((e.time, e.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.due.front() {
            return Some(e.time);
        }
        for level in 0..LEVELS {
            let Some(slot) = self.first_occupied(level) else { continue };
            let entries = &self.slots[level * SLOTS + slot];
            // Level 0: one shared key per slot. Higher levels: the first
            // occupied slot of the lowest occupied level contains the
            // global minimum (lower levels are empty, later slots and
            // higher levels hold strictly larger keys).
            return entries.iter().map(|e| e.time).min();
        }
        None
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The time of the most recently popped event (the simulation "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Capture the queue's full state for checkpointing.
    ///
    /// Entries are returned sorted by sequence number — a canonical order
    /// independent of the wheel's internal layout, so two queues holding the
    /// same pending events always snapshot to identical bytes.
    pub fn snapshot(&self) -> EventQueueSnapshot<E>
    where
        E: Clone,
    {
        let mut entries: Vec<(SimTime, u64, E)> = self
            .due
            .iter()
            .chain(self.slots.iter().flatten())
            .map(|e| (e.time, e.seq, e.event.clone()))
            .collect();
        entries.sort_by_key(|&(_, seq, _)| seq);
        EventQueueSnapshot { entries, next_seq: self.next_seq, last_popped: self.last_popped }
    }

    /// Rebuild a queue from a snapshot.
    ///
    /// Re-inserts the recorded `(time, seq)` pairs directly (bypassing
    /// [`EventQueue::schedule`], which would re-assign sequence numbers);
    /// since pop order is a total order on `(time, seq)`, the restored
    /// queue delivers the exact remaining event sequence of the original.
    pub fn from_snapshot(snap: EventQueueSnapshot<E>) -> Self {
        let mut q = EventQueue::new();
        q.next_seq = snap.next_seq;
        q.last_popped = snap.last_popped;
        q.current_key = time_key(snap.last_popped);
        for (time, seq, event) in snap.entries {
            q.insert(Entry { key: time_key(time), seq, time, event });
        }
        q
    }
}

/// Serializable image of an [`EventQueue`]: the pending entries (in
/// sequence-number order), the next sequence number to assign, and the
/// frozen simulation clock.
pub struct EventQueueSnapshot<E> {
    /// Pending events as `(time, seq, event)`, sorted by `seq`.
    pub entries: Vec<(SimTime, u64, E)>,
    /// Sequence number the next `schedule` call will use.
    pub next_seq: u64,
    /// The simulation "now" at snapshot time.
    pub last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2.0));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn try_schedule_reports_context_and_returns_the_event() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), "late");
        q.pop();
        let err = q.try_schedule(SimTime::from_secs(0.5), "late").unwrap_err();
        assert_eq!(err.now, SimTime::from_secs(2.0));
        assert_eq!(err.time, SimTime::from_secs(0.5));
        assert_eq!(err.event, "late");
        let msg = err.to_string();
        assert!(msg.contains("before current time"), "{msg}");
        assert!(msg.contains("0.500s") && msg.contains("2.000s") && msg.contains("late"), "{msg}");
        // The rejected event consumed no sequence number.
        q.schedule(SimTime::from_secs(2.0), "ok");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.5)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn snapshot_roundtrip_preserves_pop_order_and_clock() {
        let mut q = EventQueue::new();
        for (t, e) in [(4.0, "d"), (1.0, "a"), (2.0, "b"), (2.0, "b2"), (9.0, "e")] {
            q.schedule(SimTime::from_secs(t), e);
        }
        q.pop(); // advance the clock to 1.0 so last_popped is non-trivial
        let snap = q.snapshot();
        assert_eq!(snap.entries.len(), 4);
        assert!(snap.entries.windows(2).all(|w| w[0].1 < w[1].1), "entries not seq-sorted");
        let mut restored = EventQueue::from_snapshot(snap);
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.len(), q.len());
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(a, b, "restored queue replayed a different event sequence");
    }

    #[test]
    fn restored_queue_accepts_new_events_with_fresh_seqs() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(3.0);
        q.schedule(t, 0);
        q.schedule(t, 1);
        let mut restored = EventQueue::from_snapshot(q.snapshot());
        // New events at the same timestamp must still sort after the
        // restored ones (next_seq carried over).
        restored.schedule(t, 2);
        let order: Vec<i32> = std::iter::from_fn(|| restored.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn interleaved_pops_and_near_future_schedules() {
        // Exercises due-list appends at the exact clock key and cascades
        // across byte boundaries of the f64 bit pattern.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 0);
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        // Same time as the clock: delivered next, in schedule order.
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(1.0 + 1e-12), 2);
        q.schedule(SimTime::from_secs(1.0), 3);
        q.schedule(SimTime::from_secs(1e9), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 2, 4]);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn zero_time_events_deliver_before_everything() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(0.5), "b");
        q.schedule(SimTime::ZERO, "a");
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b"]);
    }

    /// The historical binary-heap queue, kept verbatim as the reference
    /// model the wheel is property-tested against.
    mod reference {
        use crate::time::SimTime;
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        struct Scheduled<E> {
            time: SimTime,
            seq: u64,
            event: E,
        }
        impl<E> PartialEq for Scheduled<E> {
            fn eq(&self, other: &Self) -> bool {
                self.time == other.time && self.seq == other.seq
            }
        }
        impl<E> Eq for Scheduled<E> {}
        impl<E> PartialOrd for Scheduled<E> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<E> Ord for Scheduled<E> {
            fn cmp(&self, other: &Self) -> Ordering {
                other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
            }
        }

        pub struct HeapQueue<E> {
            heap: BinaryHeap<Scheduled<E>>,
            next_seq: u64,
            last_popped: SimTime,
        }

        impl<E> HeapQueue<E> {
            pub fn new() -> Self {
                HeapQueue { heap: BinaryHeap::new(), next_seq: 0, last_popped: SimTime::ZERO }
            }
            pub fn schedule(&mut self, time: SimTime, event: E) {
                assert!(time >= self.last_popped);
                self.heap.push(Scheduled { time, seq: self.next_seq, event });
                self.next_seq += 1;
            }
            pub fn pop(&mut self) -> Option<(SimTime, E)> {
                let s = self.heap.pop()?;
                self.last_popped = s.time;
                Some((s.time, s.event))
            }
            pub fn now(&self) -> SimTime {
                self.last_popped
            }
        }
    }

    /// Interpret one op stream against both queues. `times` values index a
    /// small palette to force equal-time bursts; `restore_at` snapshots and
    /// restores the wheel mid-stream (the heap has no snapshot — identical
    /// replay after restore is exactly what's being proven).
    fn run_against_reference(ops: &[(u8, u8)], restore_at: Option<usize>) {
        let palette =
            [0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 17.0, 1e-9, 1e6, 1e6, 3.0e3, 255.75, 256.0, 65_536.5];
        let mut wheel = EventQueue::new();
        let mut heap = reference::HeapQueue::new();
        let mut payload = 0u32;
        for (i, &(op, t)) in ops.iter().enumerate() {
            if Some(i) == restore_at {
                wheel = EventQueue::from_snapshot(wheel.snapshot());
            }
            if op % 4 == 0 {
                // Pop from both; results must match exactly.
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "wheel and heap diverged at op {i}");
                assert_eq!(wheel.now(), heap.now());
            } else {
                // Schedule at a palette time at or after the clock.
                let base = heap.now().as_secs();
                let time = SimTime::from_secs(base + palette[t as usize % palette.len()]);
                wheel.schedule(time, payload);
                heap.schedule(time, payload);
                payload += 1;
            }
        }
        // Drain both to the end.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b, "wheel and heap diverged during drain");
            if a.is_none() {
                break;
            }
        }
    }

    proptest! {
        #[test]
        fn prop_pop_order_nondecreasing(times in proptest::collection::vec(0.0f64..1000.0, 1..100)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule(SimTime::from_secs(t), ());
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        #[test]
        fn prop_wheel_matches_heap(ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..200)) {
            run_against_reference(&ops, None);
        }

        #[test]
        fn prop_wheel_matches_heap_across_restore(
            ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..200),
            cut in any::<proptest::sample::Index>(),
        ) {
            run_against_reference(&ops, Some(cut.index(ops.len())));
        }
    }
}
