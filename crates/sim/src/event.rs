//! The event queue: a min-heap over (time, sequence) with deterministic
//! FIFO tie-breaking, so simulations replay identically.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first;
        // ties broken by insertion order (earlier seq first).
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Discrete-event queue delivering events in nondecreasing time order, FIFO
/// among equal timestamps.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, last_popped: SimTime::ZERO }
    }

    /// Schedule `event` at absolute time `time`. Scheduling earlier than the
    /// last popped event is a logic error (it would be delivered "in the
    /// past") and panics.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.last_popped,
            "scheduling at {:?} before current time {:?}",
            time,
            self.last_popped
        );
        self.heap.push(Scheduled { time, seq: self.next_seq, event });
        self.next_seq += 1;
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.last_popped, "heap violated monotonicity");
        self.last_popped = s.time;
        Some((s.time, s.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event (the simulation "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Capture the queue's full state for checkpointing.
    ///
    /// Entries are returned sorted by sequence number — a canonical order
    /// independent of the heap's internal layout, so two queues holding the
    /// same pending events always snapshot to identical bytes.
    pub fn snapshot(&self) -> EventQueueSnapshot<E>
    where
        E: Clone,
    {
        let mut entries: Vec<(SimTime, u64, E)> =
            self.heap.iter().map(|s| (s.time, s.seq, s.event.clone())).collect();
        entries.sort_by_key(|&(_, seq, _)| seq);
        EventQueueSnapshot { entries, next_seq: self.next_seq, last_popped: self.last_popped }
    }

    /// Rebuild a queue from a snapshot.
    ///
    /// Pushes the recorded `(time, seq)` pairs directly (bypassing
    /// [`EventQueue::schedule`], which would re-assign sequence numbers and
    /// reject times at the frozen "now"); since pop order is a total order
    /// on `(time, seq)`, the restored queue delivers the exact remaining
    /// event sequence of the original.
    pub fn from_snapshot(snap: EventQueueSnapshot<E>) -> Self {
        let heap = snap
            .entries
            .into_iter()
            .map(|(time, seq, event)| Scheduled { time, seq, event })
            .collect();
        EventQueue { heap, next_seq: snap.next_seq, last_popped: snap.last_popped }
    }
}

/// Serializable image of an [`EventQueue`]: the pending entries (in
/// sequence-number order), the next sequence number to assign, and the
/// frozen simulation clock.
pub struct EventQueueSnapshot<E> {
    /// Pending events as `(time, seq, event)`, sorted by `seq`.
    pub entries: Vec<(SimTime, u64, E)>,
    /// Sequence number the next `schedule` call will use.
    pub next_seq: u64,
    /// The simulation "now" at snapshot time.
    pub last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2.0));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.5)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn snapshot_roundtrip_preserves_pop_order_and_clock() {
        let mut q = EventQueue::new();
        for (t, e) in [(4.0, "d"), (1.0, "a"), (2.0, "b"), (2.0, "b2"), (9.0, "e")] {
            q.schedule(SimTime::from_secs(t), e);
        }
        q.pop(); // advance the clock to 1.0 so last_popped is non-trivial
        let snap = q.snapshot();
        assert_eq!(snap.entries.len(), 4);
        assert!(snap.entries.windows(2).all(|w| w[0].1 < w[1].1), "entries not seq-sorted");
        let mut restored = EventQueue::from_snapshot(snap);
        assert_eq!(restored.now(), q.now());
        assert_eq!(restored.len(), q.len());
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(a, b, "restored queue replayed a different event sequence");
    }

    #[test]
    fn restored_queue_accepts_new_events_with_fresh_seqs() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(3.0);
        q.schedule(t, 0);
        q.schedule(t, 1);
        let mut restored = EventQueue::from_snapshot(q.snapshot());
        // New events at the same timestamp must still sort after the
        // restored ones (next_seq carried over).
        restored.schedule(t, 2);
        let order: Vec<i32> = std::iter::from_fn(|| restored.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    proptest! {
        #[test]
        fn prop_pop_order_nondecreasing(times in proptest::collection::vec(0.0f64..1000.0, 1..100)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule(SimTime::from_secs(t), ());
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }
    }
}
