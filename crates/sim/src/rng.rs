//! Deterministic RNG stream derivation.
//!
//! Every stochastic component of an experiment gets its own [`SimRng`]
//! derived from `(master_seed, stream_id)`, so changing how often one
//! component draws (e.g. adding an extra evaluation) never perturbs any
//! other component — the classic counter-based reproducibility discipline.

use rand::SeedableRng;

/// The simulator's concrete RNG.
///
/// This is the exact generator inside `rand::rngs::StdRng` (rand 0.8 wraps
/// `ChaCha12Rng`), named explicitly so its internal position is *inspectable*:
/// checkpointing needs `get_seed`/`get_stream`/`get_word_pos` to persist a
/// stream mid-flight and resume it bit-exactly, which the opaque `StdRng`
/// wrapper does not expose. Both types share `SeedableRng::seed_from_u64`'s
/// default seed expansion, so every historical stream is unchanged — pinned
/// by [`tests::simrng_is_bit_identical_to_stdrng`].
pub type SimRng = rand_chacha::ChaCha12Rng;

/// Fully describes a [`SimRng`]'s position: `(seed, stream, word_pos)`.
///
/// `SimRng::from_seed(seed)` + `set_stream` + `set_word_pos` reconstructs the
/// generator exactly (ChaCha's state is a pure function of these three).
pub type SimRngState = ([u8; 32], u64, u128);

/// Capture an RNG's full state for checkpointing.
pub fn rng_state(rng: &SimRng) -> SimRngState {
    (rng.get_seed(), rng.get_stream(), rng.get_word_pos())
}

/// Rebuild an RNG from a captured state; the restored generator continues
/// the stream bit-for-bit from where [`rng_state`] observed it.
pub fn rng_from_state(state: SimRngState) -> SimRng {
    let (seed, stream, word_pos) = state;
    let mut rng = SimRng::from_seed(seed);
    rng.set_stream(stream);
    rng.set_word_pos(word_pos);
    rng
}

/// SplitMix64 finalizer — a high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive an independent RNG for `(master_seed, stream_id)`.
pub fn stream_rng(master_seed: u64, stream_id: u64) -> SimRng {
    let mixed = splitmix64(master_seed ^ splitmix64(stream_id));
    SimRng::seed_from_u64(mixed)
}

/// Counter-based uniform draw in `[0, 1)`: a pure function of
/// `(master_seed, stream_id, counter)`. Used where the *number* of draws a
/// component makes depends on runtime behaviour (e.g. per-attempt fault
/// decisions) — a stateful RNG there would entangle otherwise independent
/// components, while a counter keeps every draw addressable and
/// replay-stable.
pub fn unit_from_counter(master_seed: u64, stream_id: u64, counter: u64) -> f64 {
    let mixed = splitmix64(master_seed ^ splitmix64(stream_id) ^ splitmix64(!counter));
    // 53 high bits → uniform double in [0, 1).
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// A dense family of per-client RNG streams (`base + k` for `k < len`),
/// materialized on first touch.
///
/// [`stream_rng`] is a pure function of `(master_seed, stream_id)`, so a
/// client's stream needs no storage until someone draws from it (or writes a
/// trained-ahead state back). The table keeps only the touched streams in a
/// sorted map — at million-client scale that is the active cohort, not the
/// fleet — and checkpointing walks [`touched`](LazyStreams::touched)
/// instead of serializing N states. An untouched client's stream is always
/// exactly `stream_rng(master_seed, base + k)`, bit-identical to the eager
/// `Vec<SimRng>` table this replaces.
#[derive(Clone, Debug)]
pub struct LazyStreams {
    master_seed: u64,
    base: u64,
    len: usize,
    touched: std::collections::BTreeMap<u32, SimRng>,
}

impl LazyStreams {
    /// A table of `len` streams `base + 0 .. base + len`, all untouched.
    pub fn new(master_seed: u64, base: u64, len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "stream table of {len} exceeds the u32 id space");
        LazyStreams { master_seed, base, len, touched: std::collections::BTreeMap::new() }
    }

    /// Number of streams in the family (touched or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the family is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Streams currently materialized (the sparse-checkpoint record count).
    pub fn resident(&self) -> usize {
        self.touched.len()
    }

    /// Mutable access to client `k`'s stream, materializing it on first
    /// touch.
    pub fn get_mut(&mut self, k: usize) -> &mut SimRng {
        assert!(k < self.len, "stream index {k} out of {}", self.len);
        let (seed, base) = (self.master_seed, self.base);
        self.touched.entry(k as u32).or_insert_with(|| stream_rng(seed, base + k as u64))
    }

    /// A clone of client `k`'s current stream state *without* materializing
    /// it (what the trainer hands to a cloned/remote job).
    pub fn peek(&self, k: usize) -> SimRng {
        assert!(k < self.len, "stream index {k} out of {}", self.len);
        match self.touched.get(&(k as u32)) {
            Some(rng) => rng.clone(),
            None => stream_rng(self.master_seed, self.base + k as u64),
        }
    }

    /// Store an advanced stream state back for client `k` (after a cloned
    /// job consumed draws).
    pub fn set(&mut self, k: usize, rng: SimRng) {
        assert!(k < self.len, "stream index {k} out of {}", self.len);
        self.touched.insert(k as u32, rng);
    }

    /// The touched streams in ascending client order — the sparse
    /// checkpoint payload.
    pub fn touched(&self) -> impl Iterator<Item = (u32, &SimRng)> {
        self.touched.iter().map(|(&k, rng)| (k, rng))
    }

    /// Rebuild from a sparse checkpoint record; every id must be in range.
    pub fn restore(
        master_seed: u64,
        base: u64,
        len: usize,
        entries: impl IntoIterator<Item = (u32, SimRng)>,
    ) -> Self {
        let mut t = LazyStreams::new(master_seed, base, len);
        for (k, rng) in entries {
            assert!((k as usize) < len, "restored stream index {k} out of {len}");
            t.touched.insert(k, rng);
        }
        t
    }
}

/// Well-known stream ids, so call sites stay readable and collision-free.
pub mod streams {
    /// Dataset synthesis.
    pub const DATA: u64 = 1;
    /// Dirichlet (or other) partitioning.
    pub const PARTITION: u64 = 2;
    /// Fleet speed/idle assignment.
    pub const FLEET: u64 = 3;
    /// Model weight initialization.
    pub const INIT: u64 = 4;
    /// Server-side client selection.
    pub const SELECTION: u64 = 5;
    /// Fault-plan sampling (crash times, straggler spikes, corruption).
    pub const FAULTS: u64 = 6;
    /// Adversarial attack-plan sampling (attacker set + kind assignment).
    /// Its own stream, so arming attacks never moves a fault draw.
    pub const ATTACKS: u64 = 7;
    /// Shared collusion-target generation (drawn lazily once the model
    /// dimension is known; see `AttackPlan::collusion_target`).
    pub const ATTACK_TARGET: u64 = 8;
    /// Base id for per-client local-training streams; client `k` uses
    /// `CLIENT_BASE + k`.
    pub const CLIENT_BASE: u64 = 1000;
    /// Base id for per-device idle-period draws.
    pub const IDLE_BASE: u64 = 1_000_000;
    /// Base id for per-device counter-based upload-attempt fault draws.
    pub const FAULT_ATTEMPT_BASE: u64 = 2_000_000;
    /// Base id for per-link counter-based wire-loss draws (the
    /// `LossyTransport` in `seafl-net`); link `l` decides the fate of its
    /// `n`-th sent frame from `(master_seed, NET_LOSS_BASE + l, n)`.
    pub const NET_LOSS_BASE: u64 = 3_000_000;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = stream_rng(42, 7);
        let mut b = stream_rng(42, 7);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = stream_rng(42, 1);
        let mut b = stream_rng(42, 2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = stream_rng(1, 7);
        let mut b = stream_rng(2, 7);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_from_counter_is_uniform_and_stable() {
        let a = unit_from_counter(42, 7, 0);
        let b = unit_from_counter(42, 7, 0);
        assert_eq!(a, b);
        assert_ne!(a, unit_from_counter(42, 7, 1));
        assert_ne!(a, unit_from_counter(42, 8, 0));
        assert_ne!(a, unit_from_counter(43, 7, 0));
        // Mean of many consecutive draws is near 1/2.
        let mean: f64 = (0..4000).map(|i| unit_from_counter(1, 2, i)).sum::<f64>() / 4000.0;
        assert!((0.47..0.53).contains(&mean), "mean {mean} far from 0.5");
        assert!((0..4000).all(|i| (0.0..1.0).contains(&unit_from_counter(1, 2, i))));
    }

    #[test]
    fn simrng_is_bit_identical_to_stdrng() {
        // The alias swap must not move a single historical stream: StdRng in
        // rand 0.8 is ChaCha12Rng under the hood and neither type overrides
        // the default seed_from_u64 expansion.
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let mut a = rand::rngs::StdRng::seed_from_u64(seed);
            let mut b = SimRng::seed_from_u64(seed);
            for _ in 0..16 {
                assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "u64 stream diverged at seed {seed}");
            }
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
    }

    #[test]
    fn rng_state_roundtrip_continues_stream() {
        let mut r = stream_rng(7, 9);
        for _ in 0..5 {
            let _ = r.gen::<u64>();
        }
        // Capture mid-stream (including a partially consumed word position).
        let _ = r.gen::<u32>();
        let state = rng_state(&r);
        let tail: Vec<u64> = (0..16).map(|_| r.gen()).collect();
        let mut restored = rng_from_state(state);
        let tail2: Vec<u64> = (0..16).map(|_| restored.gen()).collect();
        assert_eq!(tail, tail2, "restored RNG diverged from original");
    }

    #[test]
    fn lazy_streams_match_eager_derivation() {
        let mut lazy = LazyStreams::new(42, streams::CLIENT_BASE, 16);
        assert_eq!(lazy.resident(), 0);
        // First touch must be bit-identical to the eager table entry.
        let mut eager = stream_rng(42, streams::CLIENT_BASE + 7);
        assert_eq!(lazy.get_mut(7).gen::<u64>(), eager.gen::<u64>());
        assert_eq!(lazy.resident(), 1);
        // Subsequent touches continue the same stream.
        assert_eq!(lazy.get_mut(7).gen::<u64>(), eager.gen::<u64>());
        assert_eq!(lazy.resident(), 1);
        // Peek of an untouched stream is fresh and does not materialize.
        let mut peeked = lazy.peek(3);
        assert_eq!(peeked.gen::<u64>(), stream_rng(42, streams::CLIENT_BASE + 3).gen::<u64>());
        assert_eq!(lazy.resident(), 1);
        // Set stores an advanced state back.
        lazy.set(3, peeked);
        assert_eq!(lazy.resident(), 2);
        let mut expect = stream_rng(42, streams::CLIENT_BASE + 3);
        let _ = expect.gen::<u64>();
        assert_eq!(lazy.get_mut(3).gen::<u64>(), expect.gen::<u64>());
        // Touched iteration is ascending by client id.
        let ids: Vec<u32> = lazy.touched().map(|(k, _)| k).collect();
        assert_eq!(ids, vec![3, 7]);
        // Restore round-trips the sparse form.
        let entries: Vec<(u32, SimRng)> = lazy.touched().map(|(k, r)| (k, r.clone())).collect();
        let mut restored = LazyStreams::restore(42, streams::CLIENT_BASE, 16, entries);
        assert_eq!(restored.resident(), 2);
        assert_eq!(restored.get_mut(7).gen::<u64>(), lazy.get_mut(7).gen::<u64>());
        // Untouched entries in the restored table are fresh streams.
        assert_eq!(
            restored.peek(0).gen::<u64>(),
            stream_rng(42, streams::CLIENT_BASE).gen::<u64>()
        );
    }

    #[test]
    #[should_panic(expected = "out of 4")]
    fn lazy_streams_reject_out_of_range() {
        LazyStreams::new(0, 0, 4).get_mut(4);
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit flips roughly half the output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "only {flipped} bits flipped");
    }
}
