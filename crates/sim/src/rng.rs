//! Deterministic RNG stream derivation.
//!
//! Every stochastic component of an experiment gets its own `StdRng` derived
//! from `(master_seed, stream_id)`, so changing how often one component
//! draws (e.g. adding an extra evaluation) never perturbs any other
//! component — the classic counter-based reproducibility discipline.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive an independent RNG for `(master_seed, stream_id)`.
pub fn stream_rng(master_seed: u64, stream_id: u64) -> StdRng {
    let mixed = splitmix64(master_seed ^ splitmix64(stream_id));
    StdRng::seed_from_u64(mixed)
}

/// Well-known stream ids, so call sites stay readable and collision-free.
pub mod streams {
    /// Dataset synthesis.
    pub const DATA: u64 = 1;
    /// Dirichlet (or other) partitioning.
    pub const PARTITION: u64 = 2;
    /// Fleet speed/idle assignment.
    pub const FLEET: u64 = 3;
    /// Model weight initialization.
    pub const INIT: u64 = 4;
    /// Server-side client selection.
    pub const SELECTION: u64 = 5;
    /// Base id for per-client local-training streams; client `k` uses
    /// `CLIENT_BASE + k`.
    pub const CLIENT_BASE: u64 = 1000;
    /// Base id for per-device idle-period draws.
    pub const IDLE_BASE: u64 = 1_000_000;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = stream_rng(42, 7);
        let mut b = stream_rng(42, 7);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = stream_rng(42, 1);
        let mut b = stream_rng(42, 2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = stream_rng(1, 7);
        let mut b = stream_rng(2, 7);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit flips roughly half the output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "only {flipped} bits flipped");
    }
}
