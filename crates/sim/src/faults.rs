//! Deterministic fault injection for simulated fleets.
//!
//! Real device fleets misbehave: devices crash and never report back,
//! uploads are lost on flaky links, background load makes a device
//! temporarily slow, and buggy or adversarial clients ship numerically
//! broken updates. A [`FaultPlan`] pre-samples all of those behaviours per
//! device from its own RNG stream ([`crate::rng::streams::FAULTS`]), so
//!
//! * a plan is a pure function of `(FaultConfig, num_devices, master_seed)`
//!   — two runs with the same inputs replay the same faults event for
//!   event;
//! * the fault stream is independent of every other stream (fleet build,
//!   selection, training), so enabling faults never perturbs the healthy
//!   part of the simulation, and [`FaultConfig::none`] is bit-identical to
//!   a build without this module;
//! * the plan is serializable, so a faulty run can be archived and
//!   replayed.
//!
//! Per-attempt decisions (transient upload loss) cannot be pre-sampled —
//! the number of attempts depends on server behaviour — so they use a
//! counter-based construction: attempt `i` of device `k` hashes
//! `(master_seed, FAULT_ATTEMPT_BASE + k, i)` into a uniform draw. The
//! decision sequence of one device is therefore independent of every other
//! device's schedule.

use crate::rng::{stream_rng, streams, unit_from_counter};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a Byzantine/buggy device does to its update before uploading.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// Overwrite `count` evenly spaced parameters with NaN (a poisoned or
    /// numerically diverged update).
    NanBurst { count: usize },
    /// Scale every parameter by `factor` (a norm-exploded update; factors
    /// around 10–100 model diverged local training, larger ones model
    /// deliberate model-boosting attacks).
    GradientScale { factor: f32 },
}

/// A temporary per-device slowdown: between `start` and `end` (sim
/// seconds), local compute runs `factor`× slower.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedSpike {
    pub start: f64,
    pub end: f64,
    /// Multiplier on epoch compute time while the spike is active (≥ 1).
    pub factor: f64,
}

/// Fleet-level fault model: which faults exist and how often. All
/// probabilities are per *device* except `upload_drop_prob`, which is per
/// upload *attempt*. [`FaultConfig::none`] (the default) disables
/// everything.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a device permanently crashes during the run.
    pub crash_prob: f64,
    /// Sim-time window `(lo, hi)` the crash instant is sampled from.
    pub crash_window: (f64, f64),
    /// Per-attempt probability that an upload is lost in transit.
    pub upload_drop_prob: f64,
    /// Probability a device suffers one straggler spike.
    pub straggler_prob: f64,
    /// Sim-time window the spike start is sampled from.
    pub straggler_window: (f64, f64),
    /// Spike duration, seconds.
    pub straggler_duration: f64,
    /// Compute slowdown factor while the spike is active (≥ 1).
    pub straggler_factor: f64,
    /// Probability a device corrupts every update it uploads.
    pub corrupt_prob: f64,
    /// What corruption looks like for corrupt devices.
    pub corruption: CorruptionKind,
    /// Probability the *server itself* dies mid-run (a host preemption).
    /// Unlike the device channels this kills the whole experiment at a
    /// drawn round — it exists to exercise checkpoint/resume.
    pub server_crash_prob: f64,
    /// Inclusive round window `(lo, hi)` the server-crash round is sampled
    /// from.
    pub server_crash_window: (u64, u64),
}

impl FaultConfig {
    /// No faults: the plan built from this config injects nothing.
    pub fn none() -> Self {
        FaultConfig {
            crash_prob: 0.0,
            crash_window: (0.0, 0.0),
            upload_drop_prob: 0.0,
            straggler_prob: 0.0,
            straggler_window: (0.0, 0.0),
            straggler_duration: 0.0,
            straggler_factor: 1.0,
            corrupt_prob: 0.0,
            corruption: CorruptionKind::NanBurst { count: 1 },
            server_crash_prob: 0.0,
            server_crash_window: (0, 0),
        }
    }

    /// True when every fault channel is disabled.
    pub fn is_noop(&self) -> bool {
        self.crash_prob == 0.0
            && self.upload_drop_prob == 0.0
            && self.straggler_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.server_crash_prob == 0.0
    }

    /// Panic on out-of-range parameters (mirrors `ExperimentConfig`'s
    /// assert-style validation).
    pub fn validate(&self) {
        for (name, p) in [
            ("crash_prob", self.crash_prob),
            ("upload_drop_prob", self.upload_drop_prob),
            ("straggler_prob", self.straggler_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("server_crash_prob", self.server_crash_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "faults: {name} {p} outside [0,1]");
        }
        assert!(
            self.upload_drop_prob < 1.0,
            "faults: upload_drop_prob must be < 1 (every attempt would fail)"
        );
        assert!(self.crash_window.0 <= self.crash_window.1, "faults: inverted crash_window");
        assert!(
            self.straggler_window.0 <= self.straggler_window.1,
            "faults: inverted straggler_window"
        );
        assert!(
            self.server_crash_window.0 <= self.server_crash_window.1,
            "faults: inverted server_crash_window"
        );
        assert!(self.straggler_duration >= 0.0, "faults: negative straggler_duration");
        assert!(self.straggler_factor >= 1.0, "faults: straggler_factor must be >= 1");
        if let CorruptionKind::NanBurst { count } = self.corruption {
            assert!(count >= 1, "faults: NanBurst count must be >= 1");
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// The sampled fault schedule of one device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceFaults {
    /// Sim time at which the device dies for good (never uploads after).
    pub crash_at: Option<f64>,
    /// Per-attempt upload loss probability.
    pub drop_prob: f64,
    /// Temporary slowdown window.
    pub spike: Option<SpeedSpike>,
    /// Corruption applied to every update this device uploads.
    pub corruption: Option<CorruptionKind>,
}

impl DeviceFaults {
    fn healthy() -> Self {
        DeviceFaults { crash_at: None, drop_prob: 0.0, spike: None, corruption: None }
    }
}

/// The materialized, deterministic fault schedule of a whole fleet.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    master_seed: u64,
    devices: Vec<DeviceFaults>,
    /// Upload attempts drawn so far per device (counter-based RNG state).
    attempt_counters: Vec<u64>,
    /// Round at which the *server* dies, if ever. Drawn after all device
    /// schedules, so enabling it never moves a device fault.
    server_crash_round: Option<u64>,
}

impl FaultPlan {
    /// Sample the plan for `num_devices` devices. Each device consumes a
    /// fixed number of draws from the `FAULTS` stream, so device `k`'s
    /// faults depend only on `(cfg, master_seed, k)`.
    pub fn build(cfg: &FaultConfig, num_devices: usize, master_seed: u64) -> Self {
        cfg.validate();
        let mut rng = stream_rng(master_seed, streams::FAULTS);
        let devices = (0..num_devices)
            .map(|_| {
                // Fixed draw sequence per device: decision + instant for
                // each channel, drawn unconditionally.
                let (u_crash, t_crash): (f64, f64) = (rng.gen(), rng.gen());
                let (u_strag, t_strag): (f64, f64) = (rng.gen(), rng.gen());
                let u_corrupt: f64 = rng.gen();
                let crash_at = (u_crash < cfg.crash_prob).then(|| {
                    cfg.crash_window.0 + t_crash * (cfg.crash_window.1 - cfg.crash_window.0)
                });
                let spike = (u_strag < cfg.straggler_prob).then(|| {
                    let start = cfg.straggler_window.0
                        + t_strag * (cfg.straggler_window.1 - cfg.straggler_window.0);
                    SpeedSpike {
                        start,
                        end: start + cfg.straggler_duration,
                        factor: cfg.straggler_factor,
                    }
                });
                let corruption = (u_corrupt < cfg.corrupt_prob).then_some(cfg.corruption);
                DeviceFaults { crash_at, drop_prob: cfg.upload_drop_prob, spike, corruption }
            })
            .collect();
        // Server-crash draws come *after* the per-device loop: a config that
        // only differs in server_crash_* replays identical device faults.
        let (u_server, t_server): (f64, f64) = (rng.gen(), rng.gen());
        let server_crash_round = (u_server < cfg.server_crash_prob).then(|| {
            let (lo, hi) = cfg.server_crash_window;
            let span = hi - lo + 1; // inclusive window
            lo + ((t_server * span as f64) as u64).min(span - 1)
        });
        FaultPlan {
            master_seed,
            devices,
            attempt_counters: vec![0; num_devices],
            server_crash_round,
        }
    }

    /// A plan that injects nothing (what every experiment gets by default).
    pub fn none(num_devices: usize) -> Self {
        FaultPlan {
            master_seed: 0,
            devices: vec![DeviceFaults::healthy(); num_devices],
            attempt_counters: vec![0; num_devices],
            server_crash_round: None,
        }
    }

    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    pub fn device(&self, k: usize) -> &DeviceFaults {
        &self.devices[k]
    }

    /// True when no device (and not the server) has any fault scheduled.
    pub fn is_noop(&self) -> bool {
        self.server_crash_round.is_none()
            && self.devices.iter().all(|d| {
                d.crash_at.is_none()
                    && d.drop_prob == 0.0
                    && d.spike.is_none()
                    && d.corruption.is_none()
            })
    }

    /// Round at which the server dies, if the plan drew one.
    pub fn server_crash_round(&self) -> Option<u64> {
        self.server_crash_round
    }

    /// Disarm the server crash. A *resumed* run rebuilds its plan from the
    /// same config (so device faults replay exactly) and then calls this —
    /// the process already died once; resuming must run to completion.
    pub fn clear_server_crash(&mut self) {
        self.server_crash_round = None;
    }

    /// The per-device upload-attempt counters — the plan's only mutable
    /// state, exposed for checkpointing. Everything else is a pure function
    /// of `(FaultConfig, num_devices, master_seed)` and is rebuilt on
    /// resume rather than stored.
    pub fn attempt_counters(&self) -> &[u64] {
        &self.attempt_counters
    }

    /// Restore checkpointed attempt counters into a freshly rebuilt plan.
    pub fn restore_attempt_counters(&mut self, counters: Vec<u64>) {
        assert_eq!(
            counters.len(),
            self.devices.len(),
            "attempt-counter count does not match device count"
        );
        self.attempt_counters = counters;
    }

    /// Sim time at which device `k` permanently crashes, if ever.
    pub fn crash_time(&self, k: usize) -> Option<f64> {
        self.devices[k].crash_at
    }

    /// True iff device `k` is dead at sim time `t`.
    pub fn crashed_by(&self, k: usize, t: f64) -> bool {
        self.devices[k].crash_at.is_some_and(|c| c <= t)
    }

    /// Compute-time multiplier for device `k` at sim time `t` (1.0 =
    /// nominal speed).
    pub fn speed_multiplier(&self, k: usize, t: f64) -> f64 {
        match self.devices[k].spike {
            Some(s) if t >= s.start && t < s.end => s.factor,
            _ => 1.0,
        }
    }

    /// Decide whether device `k`'s next upload attempt is lost in transit.
    /// Counter-based: attempt `i` of device `k` is a pure function of
    /// `(master_seed, k, i)`, so one device's decisions never depend on
    /// another device's attempt count.
    pub fn upload_attempt_fails(&mut self, k: usize) -> bool {
        let p = self.devices[k].drop_prob;
        if p <= 0.0 {
            return false;
        }
        let i = self.attempt_counters[k];
        self.attempt_counters[k] += 1;
        unit_from_counter(self.master_seed, streams::FAULT_ATTEMPT_BASE + k as u64, i) < p
    }

    /// Corruption model of device `k` (None = honest device).
    pub fn corruption(&self, k: usize) -> Option<CorruptionKind> {
        self.devices[k].corruption
    }

    /// Apply device `k`'s corruption to an outgoing update in place.
    /// Returns true when the update was modified.
    pub fn corrupt(&self, k: usize, params: &mut [f32]) -> bool {
        match self.devices[k].corruption {
            None => false,
            Some(CorruptionKind::NanBurst { count }) => {
                if params.is_empty() {
                    return false;
                }
                let n = count.min(params.len());
                let stride = (params.len() / n).max(1);
                for i in 0..n {
                    params[i * stride] = f32::NAN;
                }
                true
            }
            Some(CorruptionKind::GradientScale { factor }) => {
                for p in params.iter_mut() {
                    *p *= factor;
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultConfig {
        FaultConfig {
            crash_prob: 0.3,
            crash_window: (10.0, 500.0),
            upload_drop_prob: 0.2,
            straggler_prob: 0.4,
            straggler_window: (0.0, 300.0),
            straggler_duration: 100.0,
            straggler_factor: 5.0,
            corrupt_prob: 0.25,
            corruption: CorruptionKind::NanBurst { count: 8 },
            server_crash_prob: 0.0,
            server_crash_window: (0, 0),
        }
    }

    #[test]
    fn none_plan_is_noop() {
        let plan = FaultPlan::none(10);
        assert!(plan.is_noop());
        assert!(FaultConfig::none().is_noop());
        let mut plan = plan;
        for k in 0..10 {
            assert!(!plan.upload_attempt_fails(k));
            assert_eq!(plan.crash_time(k), None);
            assert_eq!(plan.speed_multiplier(k, 123.0), 1.0);
            assert!(!plan.corrupt(k, &mut [1.0, 2.0]));
        }
    }

    #[test]
    fn build_is_deterministic() {
        let cfg = chaotic();
        let a = FaultPlan::build(&cfg, 50, 42);
        let b = FaultPlan::build(&cfg, 50, 42);
        assert_eq!(a, b);
        let c = FaultPlan::build(&cfg, 50, 43);
        assert_ne!(a, c, "different seeds produced identical plans");
    }

    #[test]
    fn attempt_decisions_deterministic_and_per_device() {
        let cfg = chaotic();
        let mut a = FaultPlan::build(&cfg, 4, 7);
        let mut b = FaultPlan::build(&cfg, 4, 7);
        // Interleave device draws differently; per-device sequences match.
        let seq_a: Vec<bool> = (0..20).map(|_| a.upload_attempt_fails(1)).collect();
        for _ in 0..5 {
            b.upload_attempt_fails(0);
            b.upload_attempt_fails(3);
        }
        let seq_b: Vec<bool> = (0..20).map(|_| b.upload_attempt_fails(1)).collect();
        assert_eq!(seq_a, seq_b, "device 1's decisions depend on other devices");
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let mut cfg = FaultConfig::none();
        cfg.upload_drop_prob = 0.3;
        let mut plan = FaultPlan::build(&cfg, 1, 0);
        let fails = (0..2000).filter(|_| plan.upload_attempt_fails(0)).count();
        let rate = fails as f64 / 2000.0;
        assert!((0.25..0.35).contains(&rate), "drop rate {rate} far from 0.3");
    }

    #[test]
    fn crash_times_inside_window() {
        let cfg = chaotic();
        let plan = FaultPlan::build(&cfg, 200, 1);
        let crashes: Vec<f64> = (0..200).filter_map(|k| plan.crash_time(k)).collect();
        assert!(!crashes.is_empty(), "crash_prob=0.3 over 200 devices produced none");
        assert!(crashes.iter().all(|&t| (10.0..=500.0).contains(&t)));
        assert!(crashes.len() < 200);
    }

    #[test]
    fn crashed_by_is_a_step_function() {
        let mut plan = FaultPlan::none(2);
        plan.devices[0].crash_at = Some(100.0);
        assert!(!plan.crashed_by(0, 99.9));
        assert!(plan.crashed_by(0, 100.0));
        assert!(plan.crashed_by(0, 1e9));
        assert!(!plan.crashed_by(1, 1e9));
    }

    #[test]
    fn spike_multiplier_applies_only_inside_window() {
        let mut plan = FaultPlan::none(1);
        plan.devices[0].spike = Some(SpeedSpike { start: 50.0, end: 150.0, factor: 4.0 });
        assert_eq!(plan.speed_multiplier(0, 49.0), 1.0);
        assert_eq!(plan.speed_multiplier(0, 50.0), 4.0);
        assert_eq!(plan.speed_multiplier(0, 149.9), 4.0);
        assert_eq!(plan.speed_multiplier(0, 150.0), 1.0);
    }

    #[test]
    fn nan_burst_injects_nans() {
        let mut plan = FaultPlan::none(1);
        plan.devices[0].corruption = Some(CorruptionKind::NanBurst { count: 4 });
        let mut params = vec![1.0f32; 100];
        assert!(plan.corrupt(0, &mut params));
        assert_eq!(params.iter().filter(|p| p.is_nan()).count(), 4);
    }

    #[test]
    fn gradient_scale_scales() {
        let mut plan = FaultPlan::none(1);
        plan.devices[0].corruption = Some(CorruptionKind::GradientScale { factor: 100.0 });
        let mut params = vec![0.5f32; 10];
        assert!(plan.corrupt(0, &mut params));
        assert!(params.iter().all(|&p| p == 50.0));
    }

    #[test]
    fn server_crash_round_drawn_inside_window() {
        let mut cfg = chaotic();
        cfg.server_crash_prob = 1.0;
        cfg.server_crash_window = (5, 9);
        for seed in 0..50 {
            let plan = FaultPlan::build(&cfg, 3, seed);
            let r = plan.server_crash_round().expect("prob=1 drew no crash round");
            assert!((5..=9).contains(&r), "crash round {r} outside window");
        }
        // Determinism.
        assert_eq!(
            FaultPlan::build(&cfg, 3, 7).server_crash_round(),
            FaultPlan::build(&cfg, 3, 7).server_crash_round()
        );
        cfg.server_crash_prob = 0.0;
        assert_eq!(FaultPlan::build(&cfg, 3, 7).server_crash_round(), None);
    }

    #[test]
    fn server_crash_never_perturbs_device_schedules() {
        // The whole resume story rests on this: a run with the server-crash
        // channel armed sees the exact same device faults as one without.
        let healthy = chaotic();
        let mut crashing = chaotic();
        crashing.server_crash_prob = 1.0;
        crashing.server_crash_window = (3, 6);
        let a = FaultPlan::build(&healthy, 40, 42);
        let b = FaultPlan::build(&crashing, 40, 42);
        assert_eq!(a.devices, b.devices, "server-crash draw moved a device fault");
        assert!(a.server_crash_round().is_none());
        assert!(b.server_crash_round().is_some());
    }

    #[test]
    fn clear_and_counter_restore_support_resume() {
        let mut cfg = chaotic();
        cfg.server_crash_prob = 1.0;
        cfg.server_crash_window = (2, 4);
        let mut plan = FaultPlan::build(&cfg, 4, 11);
        for _ in 0..7 {
            plan.upload_attempt_fails(2);
        }
        let saved: Vec<u64> = plan.attempt_counters().to_vec();
        assert_eq!(saved, vec![0, 0, 7, 0]);

        // A resumed run rebuilds the plan, disarms the crash, restores the
        // counters — and then continues the per-device decision sequences
        // exactly where the crashed run left off.
        let mut rebuilt = FaultPlan::build(&cfg, 4, 11);
        rebuilt.clear_server_crash();
        rebuilt.restore_attempt_counters(saved);
        assert_eq!(rebuilt.server_crash_round(), None);
        assert!(!rebuilt.is_noop(), "device faults must survive the disarm");
        let cont_a: Vec<bool> = (0..10).map(|_| plan.upload_attempt_fails(2)).collect();
        let cont_b: Vec<bool> = (0..10).map(|_| rebuilt.upload_attempt_fails(2)).collect();
        assert_eq!(cont_a, cont_b);
    }

    #[test]
    #[should_panic(expected = "attempt-counter count")]
    fn counter_restore_rejects_wrong_length() {
        let mut plan = FaultPlan::none(3);
        plan.restore_attempt_counters(vec![0; 5]);
    }

    #[test]
    #[should_panic(expected = "inverted server_crash_window")]
    fn inverted_server_window_panics() {
        let mut cfg = FaultConfig::none();
        cfg.server_crash_prob = 0.5;
        cfg.server_crash_window = (9, 3);
        FaultPlan::build(&cfg, 1, 0);
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::build(&chaotic(), 20, 9);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn invalid_probability_panics() {
        let mut cfg = FaultConfig::none();
        cfg.crash_prob = 1.5;
        FaultPlan::build(&cfg, 1, 0);
    }
}
