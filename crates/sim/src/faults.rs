//! Deterministic fault injection for simulated fleets.
//!
//! Real device fleets misbehave: devices crash and never report back,
//! uploads are lost on flaky links, background load makes a device
//! temporarily slow, and buggy or adversarial clients ship numerically
//! broken updates. A [`FaultPlan`] pre-samples all of those behaviours per
//! device from its own RNG stream ([`crate::rng::streams::FAULTS`]), so
//!
//! * a plan is a pure function of `(FaultConfig, num_devices, master_seed)`
//!   — two runs with the same inputs replay the same faults event for
//!   event;
//! * the fault stream is independent of every other stream (fleet build,
//!   selection, training), so enabling faults never perturbs the healthy
//!   part of the simulation, and [`FaultConfig::none`] is bit-identical to
//!   a build without this module;
//! * the plan is serializable, so a faulty run can be archived and
//!   replayed.
//!
//! Per-attempt decisions (transient upload loss) cannot be pre-sampled —
//! the number of attempts depends on server behaviour — so they use a
//! counter-based construction: attempt `i` of device `k` hashes
//! `(master_seed, FAULT_ATTEMPT_BASE + k, i)` into a uniform draw. The
//! decision sequence of one device is therefore independent of every other
//! device's schedule.

use crate::rng::{stream_rng, streams, unit_from_counter};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A human-readable configuration error.
///
/// Validation used to panic straight from `assert!`; CLI front-ends (chaos,
/// the bench binaries) want to print the message and exit nonzero instead of
/// dumping a backtrace, so validators return this and the engine-side entry
/// points (`FaultPlan::build`, `ExperimentConfig::validate`) convert it back
/// into a panic with the identical message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(String);

impl ConfigError {
    /// Wrap a message.
    pub fn new(msg: impl Into<String>) -> Self {
        ConfigError(msg.into())
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConfigError {}

/// `Ok(())` when `cond` holds, else a [`ConfigError`] with `msg`'s output.
pub(crate) fn ensure(cond: bool, msg: impl FnOnce() -> String) -> Result<(), ConfigError> {
    if cond {
        Ok(())
    } else {
        Err(ConfigError::new(msg()))
    }
}

/// What a Byzantine/buggy device does to its update before uploading.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// Overwrite `count` evenly spaced parameters with NaN (a poisoned or
    /// numerically diverged update).
    NanBurst { count: usize },
    /// Scale every parameter by `factor` (a norm-exploded update; factors
    /// around 10–100 model diverged local training, larger ones model
    /// deliberate model-boosting attacks).
    GradientScale { factor: f32 },
}

/// A temporary per-device slowdown: between `start` and `end` (sim
/// seconds), local compute runs `factor`× slower.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedSpike {
    pub start: f64,
    pub end: f64,
    /// Multiplier on epoch compute time while the spike is active (≥ 1).
    pub factor: f64,
}

/// Fleet-level fault model: which faults exist and how often. All
/// probabilities are per *device* except `upload_drop_prob`, which is per
/// upload *attempt*. [`FaultConfig::none`] (the default) disables
/// everything.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a device permanently crashes during the run.
    pub crash_prob: f64,
    /// Sim-time window `(lo, hi)` the crash instant is sampled from.
    pub crash_window: (f64, f64),
    /// Per-attempt probability that an upload is lost in transit.
    pub upload_drop_prob: f64,
    /// Probability a device suffers one straggler spike.
    pub straggler_prob: f64,
    /// Sim-time window the spike start is sampled from.
    pub straggler_window: (f64, f64),
    /// Spike duration, seconds.
    pub straggler_duration: f64,
    /// Compute slowdown factor while the spike is active (≥ 1).
    pub straggler_factor: f64,
    /// Probability a device corrupts every update it uploads.
    pub corrupt_prob: f64,
    /// What corruption looks like for corrupt devices.
    pub corruption: CorruptionKind,
    /// Probability the *server itself* dies mid-run (a host preemption).
    /// Unlike the device channels this kills the whole experiment at a
    /// drawn round — it exists to exercise checkpoint/resume.
    pub server_crash_prob: f64,
    /// Inclusive round window `(lo, hi)` the server-crash round is sampled
    /// from.
    pub server_crash_window: (u64, u64),
}

impl FaultConfig {
    /// No faults: the plan built from this config injects nothing.
    pub fn none() -> Self {
        FaultConfig {
            crash_prob: 0.0,
            crash_window: (0.0, 0.0),
            upload_drop_prob: 0.0,
            straggler_prob: 0.0,
            straggler_window: (0.0, 0.0),
            straggler_duration: 0.0,
            straggler_factor: 1.0,
            corrupt_prob: 0.0,
            corruption: CorruptionKind::NanBurst { count: 1 },
            server_crash_prob: 0.0,
            server_crash_window: (0, 0),
        }
    }

    /// True when every fault channel is disabled.
    pub fn is_noop(&self) -> bool {
        self.crash_prob == 0.0
            && self.upload_drop_prob == 0.0
            && self.straggler_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.server_crash_prob == 0.0
    }

    /// Check parameters, returning a readable [`ConfigError`] on the first
    /// violation. `FaultPlan::build` and `ExperimentConfig::validate`
    /// escalate the error into a panic with the same message; CLI callers
    /// print it and exit instead.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, p) in [
            ("crash_prob", self.crash_prob),
            ("upload_drop_prob", self.upload_drop_prob),
            ("straggler_prob", self.straggler_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("server_crash_prob", self.server_crash_prob),
        ] {
            ensure((0.0..=1.0).contains(&p), || format!("faults: {name} {p} outside [0,1]"))?;
        }
        ensure(self.upload_drop_prob < 1.0, || {
            "faults: upload_drop_prob must be < 1 (every attempt would fail)".into()
        })?;
        ensure(self.crash_window.0 <= self.crash_window.1, || {
            "faults: inverted crash_window".into()
        })?;
        ensure(self.straggler_window.0 <= self.straggler_window.1, || {
            "faults: inverted straggler_window".into()
        })?;
        ensure(self.server_crash_window.0 <= self.server_crash_window.1, || {
            "faults: inverted server_crash_window".into()
        })?;
        ensure(self.straggler_duration >= 0.0, || "faults: negative straggler_duration".into())?;
        ensure(self.straggler_factor >= 1.0, || "faults: straggler_factor must be >= 1".into())?;
        if let CorruptionKind::NanBurst { count } = self.corruption {
            ensure(count >= 1, || "faults: NanBurst count must be >= 1".into())?;
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// The sampled fault schedule of one device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceFaults {
    /// Sim time at which the device dies for good (never uploads after).
    pub crash_at: Option<f64>,
    /// Per-attempt upload loss probability.
    pub drop_prob: f64,
    /// Temporary slowdown window.
    pub spike: Option<SpeedSpike>,
    /// Corruption applied to every update this device uploads.
    pub corruption: Option<CorruptionKind>,
}

impl DeviceFaults {
    const fn healthy() -> Self {
        DeviceFaults { crash_at: None, drop_prob: 0.0, spike: None, corruption: None }
    }
}

/// The shared healthy schedule every device of a fault-free plan reads.
static HEALTHY: DeviceFaults = DeviceFaults::healthy();

/// The materialized, deterministic fault schedule of a whole fleet.
///
/// Storage is sparse in the common case: a plan built from a no-op config
/// keeps `devices` empty and answers every query with the shared healthy
/// schedule, so a million-client fleet with faults disabled costs nothing.
/// Upload-attempt decisions are counter-based *pure functions* — the caller
/// (the engine's `FleetTable`) owns the per-device attempt counters, so the
/// plan itself carries no mutable per-device state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    master_seed: u64,
    num_devices: usize,
    /// Per-device schedules; empty when no fault channel is armed,
    /// regardless of fleet size.
    devices: Vec<DeviceFaults>,
    /// Round at which the *server* dies, if ever. Drawn after all device
    /// schedules, so enabling it never moves a device fault.
    server_crash_round: Option<u64>,
}

impl FaultPlan {
    /// Sample the plan for `num_devices` devices. Each device consumes a
    /// fixed number of draws from the `FAULTS` stream, so device `k`'s
    /// faults depend only on `(cfg, master_seed, k)`.
    pub fn build(cfg: &FaultConfig, num_devices: usize, master_seed: u64) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        if cfg.is_noop() {
            // Nothing to sample — stay sparse. The FAULTS stream is consumed
            // by nothing else, so skipping the draws perturbs no other state.
            return Self::none(num_devices);
        }
        let mut rng = stream_rng(master_seed, streams::FAULTS);
        let devices = (0..num_devices)
            .map(|_| {
                // Fixed draw sequence per device: decision + instant for
                // each channel, drawn unconditionally.
                let (u_crash, t_crash): (f64, f64) = (rng.gen(), rng.gen());
                let (u_strag, t_strag): (f64, f64) = (rng.gen(), rng.gen());
                let u_corrupt: f64 = rng.gen();
                let crash_at = (u_crash < cfg.crash_prob).then(|| {
                    cfg.crash_window.0 + t_crash * (cfg.crash_window.1 - cfg.crash_window.0)
                });
                let spike = (u_strag < cfg.straggler_prob).then(|| {
                    let start = cfg.straggler_window.0
                        + t_strag * (cfg.straggler_window.1 - cfg.straggler_window.0);
                    SpeedSpike {
                        start,
                        end: start + cfg.straggler_duration,
                        factor: cfg.straggler_factor,
                    }
                });
                let corruption = (u_corrupt < cfg.corrupt_prob).then_some(cfg.corruption);
                DeviceFaults { crash_at, drop_prob: cfg.upload_drop_prob, spike, corruption }
            })
            .collect();
        // Server-crash draws come *after* the per-device loop: a config that
        // only differs in server_crash_* replays identical device faults.
        let (u_server, t_server): (f64, f64) = (rng.gen(), rng.gen());
        let server_crash_round = (u_server < cfg.server_crash_prob).then(|| {
            let (lo, hi) = cfg.server_crash_window;
            let span = hi - lo + 1; // inclusive window
            lo + ((t_server * span as f64) as u64).min(span - 1)
        });
        FaultPlan { master_seed, num_devices, devices, server_crash_round }
    }

    /// A plan that injects nothing (what every experiment gets by default).
    /// O(1) storage — no per-device allocation.
    pub fn none(num_devices: usize) -> Self {
        FaultPlan { master_seed: 0, num_devices, devices: Vec::new(), server_crash_round: None }
    }

    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    pub fn device(&self, k: usize) -> &DeviceFaults {
        assert!(k < self.num_devices, "device {k} outside fleet of {}", self.num_devices);
        if self.devices.is_empty() {
            &HEALTHY
        } else {
            &self.devices[k]
        }
    }

    /// True when no device (and not the server) has any fault scheduled.
    pub fn is_noop(&self) -> bool {
        self.server_crash_round.is_none()
            && self.devices.iter().all(|d| {
                d.crash_at.is_none()
                    && d.drop_prob == 0.0
                    && d.spike.is_none()
                    && d.corruption.is_none()
            })
    }

    /// Round at which the server dies, if the plan drew one.
    pub fn server_crash_round(&self) -> Option<u64> {
        self.server_crash_round
    }

    /// Disarm the server crash. A *resumed* run rebuilds its plan from the
    /// same config (so device faults replay exactly) and then calls this —
    /// the process already died once; resuming must run to completion.
    pub fn clear_server_crash(&mut self) {
        self.server_crash_round = None;
    }

    /// Sim time at which device `k` permanently crashes, if ever.
    pub fn crash_time(&self, k: usize) -> Option<f64> {
        self.device(k).crash_at
    }

    /// True iff device `k` is dead at sim time `t`.
    pub fn crashed_by(&self, k: usize, t: f64) -> bool {
        self.device(k).crash_at.is_some_and(|c| c <= t)
    }

    /// Compute-time multiplier for device `k` at sim time `t` (1.0 =
    /// nominal speed).
    pub fn speed_multiplier(&self, k: usize, t: f64) -> f64 {
        match self.device(k).spike {
            Some(s) if t >= s.start && t < s.end => s.factor,
            _ => 1.0,
        }
    }

    /// Decide whether upload attempt `attempt` of device `k` is lost in
    /// transit. Counter-based pure function of `(master_seed, k, attempt)`:
    /// one device's decisions never depend on another device's attempt
    /// count, and the caller owns the attempt counter (the engine keeps it
    /// in the fleet table and checkpoints it there).
    pub fn upload_attempt_fails(&self, k: usize, attempt: u64) -> bool {
        let p = self.device(k).drop_prob;
        if p <= 0.0 {
            return false;
        }
        unit_from_counter(self.master_seed, streams::FAULT_ATTEMPT_BASE + k as u64, attempt) < p
    }

    /// Corruption model of device `k` (None = honest device).
    pub fn corruption(&self, k: usize) -> Option<CorruptionKind> {
        self.device(k).corruption
    }

    /// Apply device `k`'s corruption to an outgoing update in place.
    /// Returns true when the update was modified.
    pub fn corrupt(&self, k: usize, params: &mut [f32]) -> bool {
        match self.device(k).corruption {
            None => false,
            Some(CorruptionKind::NanBurst { count }) => {
                if params.is_empty() {
                    return false;
                }
                let n = count.min(params.len());
                let stride = (params.len() / n).max(1);
                for i in 0..n {
                    params[i * stride] = f32::NAN;
                }
                true
            }
            Some(CorruptionKind::GradientScale { factor }) => {
                for p in params.iter_mut() {
                    *p *= factor;
                }
                true
            }
        }
    }
}

/// What an *adversarial* (as opposed to merely broken) device does to the
/// update it uploads. Unlike [`CorruptionKind`], these attacks are crafted to
/// survive the hygiene sanitizer — finite values, often norm-plausible — and
/// must be caught (if at all) by a Byzantine-robust aggregation rule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Reflect the update about the current global model (`p ← 2g − p`):
    /// the classic sign-flip, pointing local progress exactly backwards
    /// while keeping the distance-to-global unchanged.
    SignFlip,
    /// Amplify the update's drift from the global by `lambda`
    /// (`p ← g + λ(p − g)`): a model-boosting attack that drags the average
    /// without tripping non-finite checks.
    ScaledBoost {
        /// Drift amplification factor (> 0, finite).
        lambda: f32,
    },
    /// Same-value collusion: every colluding device uploads the *identical*
    /// shared target vector, drawn once per run from the attack RNG stream.
    /// Rank-based rules see a coordinated cluster, not independent noise.
    Collude,
    /// Replay the attacker's own previous upload verbatim (the first upload
    /// is honest and recorded). Exploits staleness handling: the update is
    /// well-formed but perpetually one session out of date.
    StaleReplay,
}

impl AttackKind {
    /// Stable snake_case label (trace/report bridging, CLI parsing).
    pub fn label(&self) -> &'static str {
        match self {
            AttackKind::SignFlip => "sign_flip",
            AttackKind::ScaledBoost { .. } => "scaled_boost",
            AttackKind::Collude => "collude",
            AttackKind::StaleReplay => "stale_replay",
        }
    }

    /// Parse a CLI label into a kind with default parameters
    /// (`scaled_boost` gets λ = 10).
    pub fn from_label(s: &str) -> Option<AttackKind> {
        match s {
            "sign_flip" => Some(AttackKind::SignFlip),
            "scaled_boost" => Some(AttackKind::ScaledBoost { lambda: 10.0 }),
            "collude" => Some(AttackKind::Collude),
            "stale_replay" => Some(AttackKind::StaleReplay),
            _ => None,
        }
    }
}

/// Fleet-level adversarial model: how many devices are attackers and what
/// they do. Off by default ([`AttackConfig::none`]); the attacker draw uses
/// its own RNG stream ([`crate::rng::streams::ATTACKS`]), so arming the
/// channel never perturbs fault plans, selection, or training.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Probability a device is adversarial (one draw per device).
    pub attacker_prob: f64,
    /// Attack kinds assigned to attacker devices (each attacker draws one,
    /// uniformly). Empty list disables the channel.
    pub kinds: Vec<AttackKind>,
    /// Per-coordinate amplitude of the shared [`AttackKind::Collude`]
    /// target (uniform in `[-radius, radius]`).
    pub collude_radius: f32,
}

impl AttackConfig {
    /// No attacks (the default): bit-identical to a build without the
    /// adversarial model.
    pub fn none() -> Self {
        AttackConfig { attacker_prob: 0.0, kinds: Vec::new(), collude_radius: 1.0 }
    }

    /// True when the channel is disabled.
    pub fn is_noop(&self) -> bool {
        self.attacker_prob == 0.0 || self.kinds.is_empty()
    }

    /// Check parameters (same contract as [`FaultConfig::validate`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure((0.0..=1.0).contains(&self.attacker_prob), || {
            format!("attack: attacker_prob {} outside [0,1]", self.attacker_prob)
        })?;
        ensure(self.collude_radius.is_finite() && self.collude_radius > 0.0, || {
            "attack: collude_radius must be positive and finite".into()
        })?;
        for k in &self.kinds {
            if let AttackKind::ScaledBoost { lambda } = k {
                ensure(lambda.is_finite() && *lambda > 0.0, || {
                    "attack: ScaledBoost lambda must be positive and finite".into()
                })?;
            }
        }
        Ok(())
    }
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// The materialized, deterministic attacker assignment of a fleet, plus the
/// per-attacker mutable state the attacks need (stale-replay memory and the
/// lazily generated collusion target).
///
/// Like [`FaultPlan`], the assignment is a pure function of
/// `(AttackConfig, num_devices, master_seed)` — each device consumes a fixed
/// two draws from the `ATTACKS` stream — so it is rebuilt from config on
/// resume. The replay memory is the only state a checkpoint must carry
/// ([`replay_state`](AttackPlan::replay_state) /
/// [`restore_replay_state`](AttackPlan::restore_replay_state)); the
/// collusion target is a pure function of `(master_seed, dimension)` and
/// regenerates on first use.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackPlan {
    master_seed: u64,
    collude_radius: f32,
    num_devices: usize,
    /// Per-device assignment; empty when the channel is disarmed (the
    /// common case), so an attack-free plan is O(1) regardless of fleet
    /// size.
    assignments: Vec<Option<AttackKind>>,
    /// Attacker's previous upload (StaleReplay memory), keyed by device id.
    /// Sparse — only attackers that have uploaded occupy an entry. Mutable
    /// state — checkpointed.
    replay: std::collections::BTreeMap<u32, Vec<f32>>,
    /// Shared collusion target, generated deterministically on first use
    /// once the model dimension is known. Never serialized: a rebuilt plan
    /// regenerates the identical vector.
    #[serde(skip)]
    collusion_target: Option<Vec<f32>>,
}

impl AttackPlan {
    /// Sample attacker assignments for `num_devices` devices. Each device
    /// consumes exactly two draws (attacker decision + kind pick), so device
    /// `k`'s assignment depends only on `(cfg, master_seed, k)`.
    pub fn build(cfg: &AttackConfig, num_devices: usize, master_seed: u64) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("{e}"));
        if cfg.is_noop() {
            return Self::none(num_devices);
        }
        let mut rng = stream_rng(master_seed, streams::ATTACKS);
        let assignments = (0..num_devices)
            .map(|_| {
                let (u_attacker, u_kind): (f64, f64) = (rng.gen(), rng.gen());
                (u_attacker < cfg.attacker_prob).then(|| {
                    let i = ((u_kind * cfg.kinds.len() as f64) as usize).min(cfg.kinds.len() - 1);
                    cfg.kinds[i]
                })
            })
            .collect();
        AttackPlan {
            master_seed,
            collude_radius: cfg.collude_radius,
            num_devices,
            assignments,
            replay: std::collections::BTreeMap::new(),
            collusion_target: None,
        }
    }

    /// A plan with no attackers (what every experiment gets by default).
    /// O(1) storage — no per-device allocation.
    pub fn none(num_devices: usize) -> Self {
        AttackPlan {
            master_seed: 0,
            collude_radius: 0.0,
            num_devices,
            assignments: Vec::new(),
            replay: std::collections::BTreeMap::new(),
            collusion_target: None,
        }
    }

    /// True when no device attacks.
    pub fn is_noop(&self) -> bool {
        self.assignments.iter().all(Option::is_none)
    }

    /// Attack assigned to device `k` (`None` = honest device).
    pub fn kind(&self, k: usize) -> Option<AttackKind> {
        assert!(k < self.num_devices, "device {k} outside fleet of {}", self.num_devices);
        if self.assignments.is_empty() {
            None
        } else {
            self.assignments[k]
        }
    }

    /// The ground-truth attacker set, sorted — what detection
    /// precision/recall is measured against.
    pub fn attackers(&self) -> Vec<usize> {
        (0..self.assignments.len()).filter(|&k| self.assignments[k].is_some()).collect()
    }

    /// Apply device `k`'s attack to an outgoing update in place. `global`
    /// is the server model the reflection/boost attacks aim against.
    /// Returns the kind applied when the update was modified.
    pub fn apply(&mut self, k: usize, params: &mut [f32], global: &[f32]) -> Option<AttackKind> {
        let kind = self.kind(k)?;
        match kind {
            AttackKind::SignFlip => {
                assert_eq!(params.len(), global.len(), "attack: model size mismatch");
                for (p, &g) in params.iter_mut().zip(global.iter()) {
                    *p = 2.0 * g - *p;
                }
            }
            AttackKind::ScaledBoost { lambda } => {
                assert_eq!(params.len(), global.len(), "attack: model size mismatch");
                for (p, &g) in params.iter_mut().zip(global.iter()) {
                    *p = g + lambda * (*p - g);
                }
            }
            AttackKind::Collude => {
                let target = self.collusion_target(params.len());
                params.copy_from_slice(target);
            }
            AttackKind::StaleReplay => {
                // Record this (honest) upload, send the previous one. The
                // first upload has nothing to replay and goes out unchanged.
                let prev = self.replay.insert(k as u32, params.to_vec());
                match prev {
                    Some(p) => {
                        assert_eq!(params.len(), p.len(), "attack: model size changed");
                        params.copy_from_slice(&p);
                    }
                    None => return None,
                }
            }
        }
        Some(kind)
    }

    /// The shared collusion target for models of `dim` parameters,
    /// generated on first use from the `ATTACK_TARGET` stream.
    fn collusion_target(&mut self, dim: usize) -> &[f32] {
        let target = self.collusion_target.get_or_insert_with(|| {
            let mut rng = stream_rng(self.master_seed, streams::ATTACK_TARGET);
            let r = self.collude_radius;
            (0..dim).map(|_| rng.gen::<f32>() * 2.0 * r - r).collect()
        });
        assert_eq!(target.len(), dim, "attack: model size changed");
        target
    }

    /// The per-attacker replay memory — the plan's only checkpointed state.
    /// Sparse: only attackers that have uploaded appear, in id order.
    pub fn replay_state(&self) -> &std::collections::BTreeMap<u32, Vec<f32>> {
        &self.replay
    }

    /// Restore checkpointed replay memory into a freshly rebuilt plan.
    pub fn restore_replay_state(&mut self, replay: std::collections::BTreeMap<u32, Vec<f32>>) {
        if let Some((&k, _)) = replay.last_key_value() {
            assert!(
                (k as usize) < self.num_devices,
                "replay-state device {k} outside fleet of {}",
                self.num_devices
            );
        }
        self.replay = replay;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultConfig {
        FaultConfig {
            crash_prob: 0.3,
            crash_window: (10.0, 500.0),
            upload_drop_prob: 0.2,
            straggler_prob: 0.4,
            straggler_window: (0.0, 300.0),
            straggler_duration: 100.0,
            straggler_factor: 5.0,
            corrupt_prob: 0.25,
            corruption: CorruptionKind::NanBurst { count: 8 },
            server_crash_prob: 0.0,
            server_crash_window: (0, 0),
        }
    }

    #[test]
    fn none_plan_is_noop() {
        let plan = FaultPlan::none(10);
        assert!(plan.is_noop());
        assert!(FaultConfig::none().is_noop());
        assert_eq!(plan.num_devices(), 10);
        for k in 0..10 {
            assert!(!plan.upload_attempt_fails(k, 0));
            assert_eq!(plan.crash_time(k), None);
            assert_eq!(plan.speed_multiplier(k, 123.0), 1.0);
            assert!(!plan.corrupt(k, &mut [1.0, 2.0]));
        }
        // A no-op *config* builds the same sparse plan without touching RNG.
        let built = FaultPlan::build(&FaultConfig::none(), 10, 42);
        assert!(built.is_noop());
        assert_eq!(built.num_devices(), 10);
    }

    #[test]
    #[should_panic(expected = "outside fleet")]
    fn out_of_range_device_panics_even_when_sparse() {
        let plan = FaultPlan::none(3);
        plan.crash_time(3);
    }

    #[test]
    fn build_is_deterministic() {
        let cfg = chaotic();
        let a = FaultPlan::build(&cfg, 50, 42);
        let b = FaultPlan::build(&cfg, 50, 42);
        assert_eq!(a, b);
        let c = FaultPlan::build(&cfg, 50, 43);
        assert_ne!(a, c, "different seeds produced identical plans");
    }

    #[test]
    fn attempt_decisions_deterministic_and_per_device() {
        let cfg = chaotic();
        let a = FaultPlan::build(&cfg, 4, 7);
        let b = FaultPlan::build(&cfg, 4, 7);
        // Pure function of (seed, device, attempt): querying other devices
        // in between cannot perturb device 1's sequence.
        let seq_a: Vec<bool> = (0..20).map(|i| a.upload_attempt_fails(1, i)).collect();
        for i in 0..5 {
            b.upload_attempt_fails(0, i);
            b.upload_attempt_fails(3, i);
        }
        let seq_b: Vec<bool> = (0..20).map(|i| b.upload_attempt_fails(1, i)).collect();
        assert_eq!(seq_a, seq_b, "device 1's decisions depend on other devices");
        // And re-querying the same attempt index replays the same decision.
        assert_eq!(a.upload_attempt_fails(2, 9), a.upload_attempt_fails(2, 9));
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let mut cfg = FaultConfig::none();
        cfg.upload_drop_prob = 0.3;
        let plan = FaultPlan::build(&cfg, 1, 0);
        let fails = (0..2000).filter(|&i| plan.upload_attempt_fails(0, i)).count();
        let rate = fails as f64 / 2000.0;
        assert!((0.25..0.35).contains(&rate), "drop rate {rate} far from 0.3");
    }

    #[test]
    fn crash_times_inside_window() {
        let cfg = chaotic();
        let plan = FaultPlan::build(&cfg, 200, 1);
        let crashes: Vec<f64> = (0..200).filter_map(|k| plan.crash_time(k)).collect();
        assert!(!crashes.is_empty(), "crash_prob=0.3 over 200 devices produced none");
        assert!(crashes.iter().all(|&t| (10.0..=500.0).contains(&t)));
        assert!(crashes.len() < 200);
    }

    #[test]
    fn crashed_by_is_a_step_function() {
        let mut plan = FaultPlan::none(2);
        plan.devices = vec![DeviceFaults::healthy(); 2];
        plan.devices[0].crash_at = Some(100.0);
        assert!(!plan.crashed_by(0, 99.9));
        assert!(plan.crashed_by(0, 100.0));
        assert!(plan.crashed_by(0, 1e9));
        assert!(!plan.crashed_by(1, 1e9));
    }

    #[test]
    fn spike_multiplier_applies_only_inside_window() {
        let mut plan = FaultPlan::none(1);
        plan.devices = vec![DeviceFaults::healthy()];
        plan.devices[0].spike = Some(SpeedSpike { start: 50.0, end: 150.0, factor: 4.0 });
        assert_eq!(plan.speed_multiplier(0, 49.0), 1.0);
        assert_eq!(plan.speed_multiplier(0, 50.0), 4.0);
        assert_eq!(plan.speed_multiplier(0, 149.9), 4.0);
        assert_eq!(plan.speed_multiplier(0, 150.0), 1.0);
    }

    #[test]
    fn nan_burst_injects_nans() {
        let mut plan = FaultPlan::none(1);
        plan.devices = vec![DeviceFaults::healthy()];
        plan.devices[0].corruption = Some(CorruptionKind::NanBurst { count: 4 });
        let mut params = vec![1.0f32; 100];
        assert!(plan.corrupt(0, &mut params));
        assert_eq!(params.iter().filter(|p| p.is_nan()).count(), 4);
    }

    #[test]
    fn gradient_scale_scales() {
        let mut plan = FaultPlan::none(1);
        plan.devices = vec![DeviceFaults::healthy()];
        plan.devices[0].corruption = Some(CorruptionKind::GradientScale { factor: 100.0 });
        let mut params = vec![0.5f32; 10];
        assert!(plan.corrupt(0, &mut params));
        assert!(params.iter().all(|&p| p == 50.0));
    }

    #[test]
    fn server_crash_round_drawn_inside_window() {
        let mut cfg = chaotic();
        cfg.server_crash_prob = 1.0;
        cfg.server_crash_window = (5, 9);
        for seed in 0..50 {
            let plan = FaultPlan::build(&cfg, 3, seed);
            let r = plan.server_crash_round().expect("prob=1 drew no crash round");
            assert!((5..=9).contains(&r), "crash round {r} outside window");
        }
        // Determinism.
        assert_eq!(
            FaultPlan::build(&cfg, 3, 7).server_crash_round(),
            FaultPlan::build(&cfg, 3, 7).server_crash_round()
        );
        cfg.server_crash_prob = 0.0;
        assert_eq!(FaultPlan::build(&cfg, 3, 7).server_crash_round(), None);
    }

    #[test]
    fn server_crash_never_perturbs_device_schedules() {
        // The whole resume story rests on this: a run with the server-crash
        // channel armed sees the exact same device faults as one without.
        let healthy = chaotic();
        let mut crashing = chaotic();
        crashing.server_crash_prob = 1.0;
        crashing.server_crash_window = (3, 6);
        let a = FaultPlan::build(&healthy, 40, 42);
        let b = FaultPlan::build(&crashing, 40, 42);
        assert_eq!(a.devices, b.devices, "server-crash draw moved a device fault");
        assert!(a.server_crash_round().is_none());
        assert!(b.server_crash_round().is_some());
    }

    #[test]
    fn clear_and_rebuild_support_resume() {
        let mut cfg = chaotic();
        cfg.server_crash_prob = 1.0;
        cfg.server_crash_window = (2, 4);
        let plan = FaultPlan::build(&cfg, 4, 11);
        // The crashed run made 7 attempt draws for device 2; the engine
        // checkpoints that counter. A resumed run rebuilds the plan, disarms
        // the crash — and because attempt decisions are pure functions of
        // (seed, device, attempt index), continuing from the restored
        // counter replays the exact sequence the crashed run would have.
        let mut rebuilt = FaultPlan::build(&cfg, 4, 11);
        rebuilt.clear_server_crash();
        assert_eq!(rebuilt.server_crash_round(), None);
        assert!(!rebuilt.is_noop(), "device faults must survive the disarm");
        let cont_a: Vec<bool> = (7..17).map(|i| plan.upload_attempt_fails(2, i)).collect();
        let cont_b: Vec<bool> = (7..17).map(|i| rebuilt.upload_attempt_fails(2, i)).collect();
        assert_eq!(cont_a, cont_b);
    }

    #[test]
    #[should_panic(expected = "inverted server_crash_window")]
    fn inverted_server_window_panics() {
        let mut cfg = FaultConfig::none();
        cfg.server_crash_prob = 0.5;
        cfg.server_crash_window = (9, 3);
        FaultPlan::build(&cfg, 1, 0);
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::build(&chaotic(), 20, 9);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn invalid_probability_panics() {
        let mut cfg = FaultConfig::none();
        cfg.crash_prob = 1.5;
        FaultPlan::build(&cfg, 1, 0);
    }

    #[test]
    fn validate_returns_readable_errors() {
        let mut cfg = FaultConfig::none();
        cfg.straggler_factor = 0.5;
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.to_string(), "faults: straggler_factor must be >= 1");
        assert!(FaultConfig::none().validate().is_ok());

        let mut atk = AttackConfig::none();
        atk.attacker_prob = -0.1;
        assert!(atk.validate().unwrap_err().to_string().contains("outside [0,1]"));
        atk.attacker_prob = 0.5;
        atk.kinds = vec![AttackKind::ScaledBoost { lambda: f32::INFINITY }];
        assert!(atk.validate().unwrap_err().to_string().contains("lambda"));
    }

    fn hostile() -> AttackConfig {
        AttackConfig {
            attacker_prob: 0.4,
            kinds: vec![
                AttackKind::SignFlip,
                AttackKind::ScaledBoost { lambda: 8.0 },
                AttackKind::Collude,
                AttackKind::StaleReplay,
            ],
            collude_radius: 2.0,
        }
    }

    #[test]
    fn attack_plan_is_deterministic_and_off_is_noop() {
        let a = AttackPlan::build(&hostile(), 50, 42);
        let b = AttackPlan::build(&hostile(), 50, 42);
        assert_eq!(a, b);
        assert!(!a.is_noop(), "prob=0.4 over 50 devices drew no attacker");
        assert_ne!(a, AttackPlan::build(&hostile(), 50, 43));
        assert!(AttackPlan::build(&AttackConfig::none(), 50, 42).is_noop());
        assert!(AttackPlan::none(50).is_noop());
        let mut none = AttackPlan::none(3);
        let mut params = vec![1.0f32, 2.0];
        assert_eq!(none.apply(1, &mut params, &[0.0, 0.0]), None);
        assert_eq!(params, vec![1.0, 2.0]);
    }

    #[test]
    fn attackers_match_assignments() {
        let plan = AttackPlan::build(&hostile(), 80, 7);
        let attackers = plan.attackers();
        assert!(attackers.windows(2).all(|w| w[0] < w[1]), "attacker set must be sorted");
        for k in 0..80 {
            assert_eq!(attackers.contains(&k), plan.kind(k).is_some());
        }
    }

    #[test]
    fn sign_flip_reflects_about_global() {
        let mut plan = AttackPlan::none(1);
        plan.assignments = vec![Some(AttackKind::SignFlip)];
        let mut p = vec![3.0f32, -1.0];
        assert_eq!(plan.apply(0, &mut p, &[1.0, 1.0]), Some(AttackKind::SignFlip));
        assert_eq!(p, vec![-1.0, 3.0]);
    }

    #[test]
    fn scaled_boost_amplifies_drift() {
        let mut plan = AttackPlan::none(1);
        plan.assignments = vec![Some(AttackKind::ScaledBoost { lambda: 10.0 })];
        let mut p = vec![1.5f32];
        plan.apply(0, &mut p, &[1.0]);
        assert_eq!(p, vec![6.0]);
    }

    #[test]
    fn colluders_share_one_deterministic_target() {
        let mut cfg = hostile();
        cfg.kinds = vec![AttackKind::Collude];
        cfg.attacker_prob = 1.0;
        let mut a = AttackPlan::build(&cfg, 2, 9);
        let mut b = AttackPlan::build(&cfg, 2, 9);
        let g = vec![0.0f32; 16];
        let mut u0 = vec![1.0f32; 16];
        let mut u1 = vec![-1.0f32; 16];
        a.apply(0, &mut u0, &g);
        a.apply(1, &mut u1, &g);
        assert_eq!(u0, u1, "colluders must upload the identical target");
        assert!(u0.iter().all(|v| v.abs() <= cfg.collude_radius));
        let mut u2 = vec![5.0f32; 16];
        b.apply(0, &mut u2, &g);
        assert_eq!(u0, u2, "target must be a pure function of seed + dim");
    }

    #[test]
    fn stale_replay_lags_one_upload_and_restores() {
        let mut plan = AttackPlan::none(2);
        plan.assignments = vec![None, Some(AttackKind::StaleReplay)];
        let g = vec![0.0f32; 2];
        let mut first = vec![1.0f32, 2.0];
        assert_eq!(plan.apply(1, &mut first, &g), None, "first upload goes out honest");
        assert_eq!(first, vec![1.0, 2.0]);
        let mut second = vec![3.0f32, 4.0];
        assert_eq!(plan.apply(1, &mut second, &g), Some(AttackKind::StaleReplay));
        assert_eq!(second, vec![1.0, 2.0], "second upload replays the first");

        // Resume: rebuild + restore replay memory continues the sequence.
        let saved = plan.replay_state().clone();
        assert_eq!(saved.len(), 1, "only the attacker that uploaded holds replay memory");
        let mut rebuilt = AttackPlan::none(2);
        rebuilt.assignments = vec![None, Some(AttackKind::StaleReplay)];
        rebuilt.restore_replay_state(saved);
        let mut third_a = vec![5.0f32, 6.0];
        let mut third_b = third_a.clone();
        plan.apply(1, &mut third_a, &g);
        rebuilt.apply(1, &mut third_b, &g);
        assert_eq!(third_a, third_b);
        assert_eq!(third_a, vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "replay-state device")]
    fn replay_restore_rejects_out_of_range_device() {
        let mut plan = AttackPlan::none(3);
        let mut replay = std::collections::BTreeMap::new();
        replay.insert(5u32, vec![1.0f32]);
        plan.restore_replay_state(replay);
    }

    #[test]
    fn attack_plan_round_trips_through_serde() {
        let plan = AttackPlan::build(&hostile(), 20, 9);
        let json = serde_json::to_string(&plan).unwrap();
        let back: AttackPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn attack_labels_round_trip() {
        for k in [
            AttackKind::SignFlip,
            AttackKind::ScaledBoost { lambda: 10.0 },
            AttackKind::Collude,
            AttackKind::StaleReplay,
        ] {
            assert_eq!(AttackKind::from_label(k.label()), Some(k));
        }
        assert_eq!(AttackKind::from_label("nope"), None);
    }
}
