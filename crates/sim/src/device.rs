//! Per-device compute, idle, and network models, and fleet construction.

use crate::id::ClientId;
use crate::rng::{stream_rng, streams};
use rand::Rng;
use seafl_data::sampling::{ParetoSpeed, ZipfIdle};
use serde::{Deserialize, Serialize};

/// Timing model for one simulated device.
///
/// Training time for one epoch of `b` batches is
/// `b · base_batch_time · speed_factor + idle`, where `idle` is drawn per
/// epoch from the optional Zipf idle model (the paper's §III setup) and
/// `speed_factor` is a fixed per-device multiplier (the paper's §VI Pareto
/// setup). Upload/download of a model of `bytes` costs
/// `latency + bytes / bandwidth`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceProfile {
    pub id: usize,
    /// Fixed compute-speed multiplier (≥ 1; 1 = fastest tier).
    pub speed_factor: f64,
    /// Optional per-epoch idle-period generator.
    pub idle: Option<ZipfIdle>,
    /// Uplink bandwidth, bytes/second.
    pub up_bandwidth: f64,
    /// Downlink bandwidth, bytes/second.
    pub down_bandwidth: f64,
    /// One-way network latency, seconds.
    pub latency: f64,
}

impl DeviceProfile {
    /// Compute time for one local epoch of `batches` minibatches, excluding
    /// idle periods.
    pub fn epoch_compute_time(&self, batches: usize, base_batch_time: f64) -> f64 {
        assert!(base_batch_time > 0.0, "base_batch_time must be positive");
        batches as f64 * base_batch_time * self.speed_factor
    }

    /// Draw this epoch's idle period (0 if the device has no idle model).
    pub fn idle_time(&self, rng: &mut impl Rng) -> f64 {
        self.idle.map_or(0.0, |z| z.sample(rng))
    }

    /// Time to upload `bytes` to the server.
    pub fn upload_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.up_bandwidth
    }

    /// Time for the server to push `bytes` down to this device.
    pub fn download_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.down_bandwidth
    }
}

/// Fleet-level configuration: how to build `n` heterogeneous devices.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetConfig {
    pub num_devices: usize,
    /// Seconds of compute per minibatch on the fastest tier.
    pub base_batch_time: f64,
    /// Heavy-tailed fixed speed factors (None ⇒ all devices speed 1).
    pub pareto_speed: Option<ParetoSpeed>,
    /// Per-epoch Zipf idle periods (None ⇒ no idling).
    pub zipf_idle: Option<ZipfIdle>,
    /// Uplink bandwidth, bytes/second (same for all devices here; per-device
    /// heterogeneity comes from the speed factor, matching the paper).
    pub up_bandwidth: f64,
    pub down_bandwidth: f64,
    pub latency: f64,
}

impl FleetConfig {
    /// The paper's main-evaluation fleet: Pareto speed factors, no idle.
    pub fn pareto_fleet(num_devices: usize) -> Self {
        FleetConfig {
            num_devices,
            base_batch_time: 0.05,
            pareto_speed: Some(ParetoSpeed::paper_default()),
            zipf_idle: None,
            up_bandwidth: 1e6,
            down_bandwidth: 4e6,
            latency: 0.05,
        }
    }

    /// The §III insights fleet: uniform compute, Zipf(1.7, 60 s) idle after
    /// every epoch.
    pub fn zipf_idle_fleet(num_devices: usize) -> Self {
        FleetConfig {
            num_devices,
            base_batch_time: 0.05,
            pareto_speed: None,
            zipf_idle: Some(ZipfIdle::paper_default()),
            up_bandwidth: 1e6,
            down_bandwidth: 4e6,
            latency: 0.05,
        }
    }

    /// Materialize the fleet deterministically from `master_seed`.
    ///
    /// Eager reference construction: allocates all `num_devices` profiles up
    /// front. Million-client fleets should use [`Fleet::lazy`], which derives
    /// the identical profiles on demand — the equivalence is pinned by
    /// `lazy_profiles_match_eager_build`.
    pub fn build(&self, master_seed: u64) -> Vec<DeviceProfile> {
        assert!(self.num_devices > 0, "FleetConfig: zero devices");
        let mut rng = stream_rng(master_seed, streams::FLEET);
        (0..self.num_devices)
            .map(|id| DeviceProfile {
                id,
                speed_factor: self.pareto_speed.map_or(1.0, |p| p.sample(&mut rng)),
                idle: self.zipf_idle,
                up_bandwidth: self.up_bandwidth,
                down_bandwidth: self.down_bandwidth,
                latency: self.latency,
            })
            .collect()
    }
}

/// A fleet of devices materialized lazily from the master seed.
///
/// [`FleetConfig::build`] draws each device's speed factor sequentially from
/// the `FLEET` RNG stream, so an eager fleet costs O(N) memory even though a
/// semi-async server only ever touches the cohort-sized subset that actually
/// trains. `Fleet` stores just the config plus the measured RNG stride of
/// one speed draw: device `k`'s draw starts at word position `k · stride`,
/// so [`profile`](Fleet::profile) can seek the counter-based ChaCha stream
/// straight to it and reproduce the eager profile bit for bit — never-touched
/// clients cost zero bytes.
#[derive(Clone, Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    master_seed: u64,
    /// ChaCha word-position stride of one speed draw (0 when the config has
    /// no speed distribution). Measured once at construction: a Pareto
    /// sample consumes a fixed number of words, and
    /// [`profile`](Fleet::profile) debug-asserts the stride on every draw.
    words_per_draw: u128,
}

impl Fleet {
    /// Wrap `cfg` for on-demand derivation; cost is one probe draw,
    /// regardless of `num_devices`.
    pub fn lazy(cfg: FleetConfig, master_seed: u64) -> Self {
        assert!(cfg.num_devices > 0, "FleetConfig: zero devices");
        let words_per_draw = cfg.pareto_speed.map_or(0, |p| {
            let mut rng = stream_rng(master_seed, streams::FLEET);
            let before = rng.get_word_pos();
            let _ = p.sample(&mut rng);
            rng.get_word_pos() - before
        });
        Fleet { cfg, master_seed, words_per_draw }
    }

    /// Registered devices N.
    pub fn len(&self) -> usize {
        self.cfg.num_devices
    }

    /// Never true: construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        self.cfg.num_devices == 0
    }

    /// The fleet-level timing config.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Derive device `id`'s profile, bit-identical to the eager
    /// [`FleetConfig::build`] entry at the same index.
    pub fn profile(&self, id: ClientId) -> DeviceProfile {
        let k = id.index();
        assert!(k < self.cfg.num_devices, "client {k} outside fleet of {}", self.cfg.num_devices);
        let speed_factor = match self.cfg.pareto_speed {
            None => 1.0,
            Some(p) => {
                let start = self.words_per_draw * k as u128;
                let mut rng = stream_rng(self.master_seed, streams::FLEET);
                rng.set_word_pos(start);
                let v = p.sample(&mut rng);
                debug_assert_eq!(
                    rng.get_word_pos() - start,
                    self.words_per_draw,
                    "speed draw consumed a variable number of RNG words"
                );
                v
            }
        };
        DeviceProfile {
            id: k,
            speed_factor,
            idle: self.cfg.zipf_idle,
            up_bandwidth: self.cfg.up_bandwidth,
            down_bandwidth: self.cfg.down_bandwidth,
            latency: self.cfg.latency,
        }
    }

    /// Device `id`'s speed factor (what selection weighting reads).
    pub fn speed_factor(&self, id: ClientId) -> f64 {
        match self.cfg.pareto_speed {
            None => 1.0,
            Some(_) => self.profile(id).speed_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn epoch_compute_scales_with_speed_factor() {
        let slow = DeviceProfile {
            id: 0,
            speed_factor: 4.0,
            idle: None,
            up_bandwidth: 1e6,
            down_bandwidth: 1e6,
            latency: 0.0,
        };
        assert!((slow.epoch_compute_time(10, 0.1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn network_times() {
        let d = DeviceProfile {
            id: 0,
            speed_factor: 1.0,
            idle: None,
            up_bandwidth: 1e6,
            down_bandwidth: 2e6,
            latency: 0.05,
        };
        assert!((d.upload_time(1_000_000) - 1.05).abs() < 1e-9);
        assert!((d.download_time(1_000_000) - 0.55).abs() < 1e-9);
    }

    #[test]
    fn idle_time_zero_without_model() {
        let d = DeviceProfile {
            id: 0,
            speed_factor: 1.0,
            idle: None,
            up_bandwidth: 1.0,
            down_bandwidth: 1.0,
            latency: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.idle_time(&mut rng), 0.0);
    }

    #[test]
    fn pareto_fleet_is_heterogeneous_and_deterministic() {
        let cfg = FleetConfig::pareto_fleet(100);
        let f1 = cfg.build(7);
        let f2 = cfg.build(7);
        assert_eq!(f1.len(), 100);
        for (a, b) in f1.iter().zip(f2.iter()) {
            assert_eq!(a.speed_factor, b.speed_factor);
        }
        let min = f1.iter().map(|d| d.speed_factor).fold(f64::INFINITY, f64::min);
        let max = f1.iter().map(|d| d.speed_factor).fold(0.0, f64::max);
        assert!(max / min > 3.0, "fleet not heterogeneous: {min}..{max}");
    }

    #[test]
    fn zipf_fleet_has_idle_models() {
        let fleet = FleetConfig::zipf_idle_fleet(5).build(0);
        assert!(fleet.iter().all(|d| d.idle.is_some()));
        assert!(fleet.iter().all(|d| d.speed_factor == 1.0));
    }

    #[test]
    fn different_seed_different_fleet() {
        let cfg = FleetConfig::pareto_fleet(50);
        let a = cfg.build(1);
        let b = cfg.build(2);
        assert!(a.iter().zip(b.iter()).any(|(x, y)| x.speed_factor != y.speed_factor));
    }

    #[test]
    fn lazy_profiles_match_eager_build() {
        for cfg in [FleetConfig::pareto_fleet(64), FleetConfig::zipf_idle_fleet(64)] {
            for seed in [0u64, 7, 42] {
                let eager = cfg.build(seed);
                let lazy = Fleet::lazy(cfg.clone(), seed);
                assert_eq!(lazy.len(), eager.len());
                // Out-of-order access must still be bit-identical: laziness
                // may never depend on visit order.
                for k in [63usize, 0, 17, 5, 63, 31] {
                    let p = lazy.profile(ClientId::new(k));
                    assert_eq!(p.id, eager[k].id);
                    assert_eq!(
                        p.speed_factor.to_bits(),
                        eager[k].speed_factor.to_bits(),
                        "speed factor diverged at device {k} seed {seed}"
                    );
                    assert_eq!(p.idle.is_some(), eager[k].idle.is_some());
                    assert_eq!(p.up_bandwidth, eager[k].up_bandwidth);
                    assert_eq!(lazy.speed_factor(ClientId::new(k)), eager[k].speed_factor);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside fleet")]
    fn lazy_profile_out_of_range_panics() {
        let fleet = Fleet::lazy(FleetConfig::pareto_fleet(4), 0);
        fleet.profile(ClientId::new(4));
    }
}
