//! The fleet server: a [`CohortTrainer`] that farms training out to
//! worker processes over the wire protocol.
//!
//! The engine's event loop never knows it is networked — it calls
//! [`CohortTrainer::train_cohort`] with a cohort and gets outcomes back.
//! Inside, the server chunks the round's global model to each worker that
//! needs it, sends one `Assign` per job, and pumps a single-threaded poll
//! loop: accepting (re)connections, acking uploads, retransmitting
//! unacked frames on a capped-exponential RTO, and reassembling outcome
//! chunks. A worker silent past the idle timeout is **quarantined** — its
//! unserved jobs move to the remaining live workers, or come back as
//! `None` slots for the engine's local-pool fallback — so a dead process
//! degrades wall-clock, never correctness.

use crate::frame::{Frame, FrameKind, PROTOCOL_VERSION};
use crate::link::{RecvLink, SendLink};
use crate::lossy::LossyTransport;
use crate::msg::{self, Msg};
use crate::transport::{Endpoint, NetListener, StreamTransport, Transport};
use crate::NetError;
use seafl_core::{
    build_codec, CodecTransferStats, CohortTrainer, ExperimentConfig, ModelRing, NetIncident,
    RemoteJob, TrainOutcome, TransportConfig, UpdateCodec,
};
use seafl_sim::rng::SimRngState;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server-side loss injection uses link ids offset by this, keeping them
/// disjoint from the client-side links (which use the worker's `--link`).
pub const SERVER_LINK_BASE: u64 = 1_000;

/// Wire-level counters measured by the server (ground truth the run
/// report prefers over the engine's modeled traffic).
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Bytes handed to transports, retransmits and handshakes included.
    pub bytes_sent: u64,
    /// Bytes received as decoded frames (header + payload).
    pub bytes_received: u64,
    /// Frames re-sent by the go-back-N RTO path.
    pub retransmits: u64,
    /// Successful resume handshakes.
    pub reconnects: u64,
    /// Workers quarantined by the idle timeout.
    pub workers_quarantined: u64,
}

/// Per-(generation, client) reassembly buffer for a chunked upload.
struct ChunkBuf {
    parts: Vec<Option<Vec<u8>>>,
    got: usize,
}

struct Worker {
    id: u64,
    /// `None` while disconnected (may resume) or after quarantine.
    transport: Option<Box<dyn Transport>>,
    send: SendLink,
    recv: RecvLink,
    last_heard: Instant,
    rto: f64,
    rto_deadline: Option<Instant>,
    /// Highest model generation already shipped to this worker.
    has_generation: u64,
    quarantined: bool,
    chunks: HashMap<(u64, u64), ChunkBuf>,
}

/// The networked cohort trainer (see module docs).
pub struct NetServer {
    listener: NetListener,
    knobs: TransportConfig,
    config_hash: u64,
    seed: u64,
    workers: Vec<Worker>,
    next_worker: u64,
    stats: Arc<Mutex<NetStats>>,
    incidents: Vec<NetIncident>,
    generation: u64,
    /// Wire codec, armed when [`seafl_core::CodecConfig::wire_active`]
    /// holds for the experiment's codec config. `None` sends raw outcome
    /// blobs (identity, or error-feedback configs whose residual state
    /// lives server-side at the engine seam).
    codec: Option<Box<dyn UpdateCodec>>,
    /// Recent global models by generation: the decode reference for coded
    /// uploads echoing that generation. Bounded; in practice depth 1,
    /// since `train_cohort` is synchronous and stale uploads are dropped.
    ring: ModelRing,
    /// Per-cohort codec provenance and byte tallies for the engine seam.
    codec_stats: CodecTransferStats,
}

type Slot = Option<(TrainOutcome, SimRngState)>;

impl NetServer {
    /// Bind `ep` and prepare to serve the experiment `cfg` describes.
    /// `stats` is shared so the caller keeps visibility after the server
    /// is boxed into the engine.
    pub fn bind(
        ep: &Endpoint,
        cfg: &ExperimentConfig,
        stats: Arc<Mutex<NetStats>>,
    ) -> Result<NetServer, NetError> {
        let listener = NetListener::bind(ep)?;
        Ok(NetServer {
            listener,
            knobs: cfg.transport.clone(),
            config_hash: cfg.state_hash(),
            seed: cfg.seed,
            workers: Vec::new(),
            next_worker: 1,
            stats,
            incidents: Vec::new(),
            generation: 0,
            codec: cfg.codec.wire_active().then(|| build_codec(&cfg.codec)),
            ring: ModelRing::new(4),
            codec_stats: CodecTransferStats::default(),
        })
    }

    /// The endpoint actually bound (resolves TCP port 0).
    pub fn local_endpoint(&self) -> &Endpoint {
        self.listener.local_endpoint()
    }

    /// Block until `n` workers have completed the handshake.
    pub fn wait_for_workers(&mut self, n: usize, timeout: Duration) -> Result<(), NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.poll_accept();
            if self.workers.len() >= n {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(NetError::RetriesExhausted {
                    context: format!(
                        "waiting for {n} workers on {} (have {})",
                        self.local_endpoint(),
                        self.workers.len()
                    ),
                    attempts: 0,
                });
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn note_sent(&self, frame: &Frame) {
        self.stats.lock().unwrap().bytes_sent += frame.wire_len() as u64;
    }

    /// Accept pending connections and run their handshakes. Connections
    /// that misbehave are dropped; the client retries.
    fn poll_accept(&mut self) {
        loop {
            match self.listener.accept() {
                Ok(Some(t)) => self.handshake(t),
                Ok(None) => return,
                Err(e) => {
                    eprintln!("seafl-server: accept failed: {e}");
                    return;
                }
            }
        }
    }

    fn reject(&self, mut t: StreamTransport, reason: &str) {
        let frame =
            Frame::new(FrameKind::Reject, 0, Msg::Reject { reason: reason.into() }.encode());
        self.note_sent(&frame);
        let _ = t.send(&frame);
    }

    fn handshake(&mut self, mut t: StreamTransport) {
        let frame = match t.recv(Duration::from_secs(2)) {
            Ok(Some(f)) if f.kind == FrameKind::Hello => f,
            _ => return,
        };
        let Ok(Msg::Hello { protocol, config_hash, worker, recv_next }) =
            Msg::decode(&frame.payload)
        else {
            return;
        };
        self.stats.lock().unwrap().bytes_received += frame.wire_len() as u64;
        if protocol != PROTOCOL_VERSION {
            self.reject(
                t,
                &format!(
                    "protocol version mismatch (server {PROTOCOL_VERSION}, client {protocol})"
                ),
            );
            return;
        }
        if config_hash != self.config_hash {
            self.reject(t, "config hash mismatch: peers built different experiments");
            return;
        }
        if worker == 0 {
            self.admit_new(t);
        } else {
            self.resume(t, worker, recv_next);
        }
    }

    fn wrap_loss(&self, t: StreamTransport, link: u64) -> Box<dyn Transport> {
        if self.knobs.loss.is_noop() {
            Box::new(t)
        } else {
            Box::new(LossyTransport::new(t, self.knobs.loss, self.seed, link))
        }
    }

    fn admit_new(&mut self, mut t: StreamTransport) {
        let id = self.next_worker;
        self.next_worker += 1;
        let welcome =
            Frame::new(FrameKind::Welcome, 0, Msg::Welcome { worker: id, resume_from: 0 }.encode());
        self.note_sent(&welcome);
        if t.send(&welcome).is_err() {
            return;
        }
        self.workers.push(Worker {
            id,
            transport: Some(self.wrap_loss(t, SERVER_LINK_BASE + id)),
            send: SendLink::new(self.knobs.replay_history),
            recv: RecvLink::new(),
            last_heard: Instant::now(),
            rto: self.knobs.rto_base,
            rto_deadline: None,
            has_generation: 0,
            quarantined: false,
            chunks: HashMap::new(),
        });
    }

    fn resume(&mut self, mut t: StreamTransport, worker: u64, recv_next: u64) {
        let Some(widx) = self.workers.iter().position(|w| w.id == worker) else {
            self.reject(t, &format!("unknown worker token {worker}"));
            return;
        };
        if self.workers[widx].quarantined {
            self.reject(t, "worker was quarantined; rejoin as a fresh worker");
            return;
        }
        let replay = match self.workers[widx].send.replay_from(recv_next) {
            Ok(frames) => frames,
            Err(gap) => {
                self.reject(
                    t,
                    &format!(
                        "resume gap: wanted offset {}, replay history starts at {}",
                        gap.requested, gap.oldest
                    ),
                );
                return;
            }
        };
        let resume_from = self.workers[widx].recv.cumulative_ack();
        let welcome =
            Frame::new(FrameKind::Welcome, 0, Msg::Welcome { worker, resume_from }.encode());
        self.note_sent(&welcome);
        if t.send(&welcome).is_err() {
            return;
        }
        let mut bt = self.wrap_loss(t, SERVER_LINK_BASE + worker);
        let mut alive = true;
        for f in &replay {
            self.note_sent(f);
            if bt.send(f).is_err() {
                alive = false;
                break;
            }
        }
        {
            let w = &mut self.workers[widx];
            w.transport = alive.then_some(bt);
            w.last_heard = Instant::now();
            w.rto = self.knobs.rto_base;
            w.rto_deadline =
                (w.send.in_flight() > 0).then(|| Instant::now() + secs(self.knobs.rto_base));
        }
        self.stats.lock().unwrap().reconnects += 1;
        self.incidents.push(NetIncident::Reconnect { worker: worker as usize });
    }

    /// Stamp `msg` onto worker `widx`'s sequenced link and try to send it.
    /// Send failures flip the worker to disconnected; the frame stays in
    /// the replay history for the resume.
    fn push_to_worker(&mut self, widx: usize, msg: &Msg) {
        let frame = self.workers[widx].send.stamp(msg.encode());
        self.note_sent(&frame);
        let w = &mut self.workers[widx];
        if let Some(t) = w.transport.as_mut() {
            if t.send(&frame).is_err() {
                w.transport = None;
            }
        }
        if w.rto_deadline.is_none() {
            w.rto_deadline = Some(Instant::now() + secs(w.rto));
        }
    }

    /// Ship the model for `gen` (if this worker does not have it yet) and
    /// one `Assign` for `job`.
    fn dispatch_job(&mut self, widx: usize, gen: u64, job: &RemoteJob, chunks: &[Vec<u8>]) {
        if self.workers[widx].has_generation < gen {
            self.workers[widx].has_generation = gen;
            let total = chunks.len() as u32;
            for (ci, c) in chunks.iter().enumerate() {
                self.push_to_worker(
                    widx,
                    &Msg::ModelChunk { generation: gen, index: ci as u32, total, bytes: c.clone() },
                );
            }
        }
        self.push_to_worker(
            widx,
            &Msg::Assign {
                generation: gen,
                client_id: job.client_id as u64,
                epochs: job.epochs as u32,
                keep_snapshots: job.keep_snapshots,
                rng: job.rng,
            },
        );
    }

    /// Drain worker `widx`'s socket: ack data, apply acks, reassemble
    /// outcome chunks into `results`.
    fn pump_worker(&mut self, widx: usize, results: &mut [Slot], index_of: &HashMap<u64, usize>) {
        loop {
            let frame = {
                let w = &mut self.workers[widx];
                let Some(t) = w.transport.as_mut() else { return };
                match t.recv(Duration::from_millis(1)) {
                    Ok(Some(f)) => f,
                    Ok(None) => return,
                    Err(_) => {
                        w.transport = None;
                        return;
                    }
                }
            };
            self.stats.lock().unwrap().bytes_received += frame.wire_len() as u64;
            let mut deliveries = Vec::new();
            {
                let w = &mut self.workers[widx];
                w.last_heard = Instant::now();
                match frame.kind {
                    FrameKind::Ack => {
                        if w.send.on_ack(frame.offset) {
                            w.rto = self.knobs.rto_base;
                            w.rto_deadline =
                                (w.send.in_flight() > 0).then(|| Instant::now() + secs(w.rto));
                        }
                        continue;
                    }
                    FrameKind::Data => {
                        let (ready, _dup) = w.recv.accept(frame);
                        deliveries = ready;
                        // Always re-advertise the cumulative ack — the one
                        // covering a duplicate may itself have been lost.
                        let ack = Frame::new(FrameKind::Ack, w.recv.cumulative_ack(), Vec::new());
                        self.stats.lock().unwrap().bytes_sent += ack.wire_len() as u64;
                        if let Some(t) = w.transport.as_mut() {
                            if t.send(&ack).is_err() {
                                w.transport = None;
                            }
                        }
                    }
                    // Handshake frames are meaningless mid-session.
                    FrameKind::Hello | FrameKind::Welcome | FrameKind::Reject => continue,
                }
            }
            for f in deliveries {
                match Msg::decode(&f.payload) {
                    Ok(Msg::OutcomeChunk { generation, client_id, index, total, bytes }) => {
                        self.on_outcome_chunk(
                            widx, generation, client_id, index, total, bytes, results, index_of,
                        );
                    }
                    Ok(other) => {
                        eprintln!(
                            "seafl-server: unexpected {other:?} from worker {}",
                            self.workers[widx].id
                        );
                    }
                    Err(e) => {
                        eprintln!(
                            "seafl-server: undecodable message from worker {}: {e}",
                            self.workers[widx].id
                        );
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_outcome_chunk(
        &mut self,
        widx: usize,
        generation: u64,
        client_id: u64,
        index: u32,
        total: u32,
        bytes: Vec<u8>,
        results: &mut [Slot],
        index_of: &HashMap<u64, usize>,
    ) {
        // Stale round, malformed header, or an implausible chunk count
        // (a hostile `total` must not size an allocation) — ignore.
        if generation != self.generation || total == 0 || index >= total || total > (1 << 16) {
            return;
        }
        let Some(&slot) = index_of.get(&client_id) else { return };
        if results[slot].is_some() {
            return; // already served (reassignment race) — ignore
        }
        let buf = self.workers[widx]
            .chunks
            .entry((generation, client_id))
            .or_insert_with(|| ChunkBuf { parts: vec![None; total as usize], got: 0 });
        if buf.parts.len() != total as usize {
            return;
        }
        if buf.parts[index as usize].is_none() {
            buf.parts[index as usize] = Some(bytes);
            buf.got += 1;
        }
        if buf.got < buf.parts.len() {
            return;
        }
        let buf = self.workers[widx].chunks.remove(&(generation, client_id)).expect("buf exists");
        let blob: Vec<u8> = buf
            .parts
            .into_iter()
            .map(|p| p.expect("all parts present"))
            .collect::<Vec<_>>()
            .concat();
        if let Some(codec) = self.codec.as_deref() {
            // The decode against the generation's model IS the codec's
            // lossy projection — this slot must not be re-projected at
            // the engine seam (exactly-once application).
            let Some(reference) = self.ring.get(generation) else {
                eprintln!("seafl-server: no model for generation {generation}, dropping outcome");
                return;
            };
            match msg::decode_outcome_coded(&blob, codec, reference) {
                Ok((outcome, rng, raw, encoded)) => {
                    results[slot] = Some((outcome, rng));
                    if let Some(c) = self.codec_stats.coded.get_mut(slot) {
                        *c = true;
                    }
                    self.codec_stats.bytes_raw += raw;
                    self.codec_stats.bytes_encoded += encoded;
                }
                Err(e) => eprintln!(
                    "seafl-server: coded outcome for client {client_id} failed to decode: {e}"
                ),
            }
            return;
        }
        match msg::decode_outcome(&blob) {
            Ok((outcome, rng)) => results[slot] = Some((outcome, rng)),
            Err(e) => {
                eprintln!("seafl-server: outcome for client {client_id} failed to decode: {e}")
            }
        }
    }

    /// Go-back-N: resend every unacked frame of any worker whose RTO
    /// expired, doubling its RTO up to the cap.
    fn service_retransmits(&mut self) {
        let now = Instant::now();
        for w in &mut self.workers {
            if w.transport.is_none() || w.send.in_flight() == 0 {
                continue;
            }
            let Some(deadline) = w.rto_deadline else {
                w.rto_deadline = Some(now + secs(w.rto));
                continue;
            };
            if now < deadline {
                continue;
            }
            let frames: Vec<Frame> = w.send.unacked().cloned().collect();
            let mut sent_bytes = 0u64;
            let mut resent = 0u64;
            if let Some(t) = w.transport.as_mut() {
                for f in &frames {
                    sent_bytes += f.wire_len() as u64;
                    resent += 1;
                    if t.send(f).is_err() {
                        w.transport = None;
                        break;
                    }
                }
            }
            let mut s = self.stats.lock().unwrap();
            s.bytes_sent += sent_bytes;
            s.retransmits += resent;
            drop(s);
            w.rto = (w.rto * 2.0).min(self.knobs.rto_cap);
            w.rto_deadline = Some(now + secs(w.rto));
        }
    }

    /// Quarantine workers silent past the idle timeout while owning
    /// unserved jobs, moving those jobs to live workers (or to `None`,
    /// i.e. the engine's local fallback) and recording the incident.
    fn service_timeouts(
        &mut self,
        gen: u64,
        jobs: &[RemoteJob],
        chunks: &[Vec<u8>],
        assigned_to: &mut [Option<u64>],
        results: &[Slot],
    ) {
        let idle = secs(self.knobs.idle_timeout);
        loop {
            let victim = self.workers.iter().position(|w| {
                !w.quarantined
                    && w.last_heard.elapsed() > idle
                    && assigned_to.iter().zip(results).any(|(a, r)| *a == Some(w.id) && r.is_none())
            });
            let Some(widx) = victim else { return };
            let id = self.workers[widx].id;
            {
                let w = &mut self.workers[widx];
                w.quarantined = true;
                w.transport = None;
            }
            self.stats.lock().unwrap().workers_quarantined += 1;
            self.incidents.push(NetIncident::Quarantine { worker: id as usize });
            eprintln!(
                "seafl-server: worker {id} idle past {:.1}s, quarantined",
                self.knobs.idle_timeout
            );
            let live: Vec<usize> = self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| !w.quarantined && w.transport.is_some())
                .map(|(i, _)| i)
                .collect();
            let mut rr = 0usize;
            for (i, job) in jobs.iter().enumerate() {
                if assigned_to[i] != Some(id) || results[i].is_some() {
                    continue;
                }
                if live.is_empty() {
                    assigned_to[i] = None; // engine's local pool takes it
                    continue;
                }
                let target = live[rr % live.len()];
                rr += 1;
                self.dispatch_job(target, gen, job, chunks);
                assigned_to[i] = Some(self.workers[target].id);
            }
        }
    }
}

impl CohortTrainer for NetServer {
    fn train_cohort(&mut self, global: &[f32], jobs: &[RemoteJob]) -> Vec<Slot> {
        self.generation += 1;
        let gen = self.generation;
        let mut results: Vec<Slot> = jobs.iter().map(|_| None).collect();
        self.codec_stats =
            CodecTransferStats { coded: vec![false; jobs.len()], bytes_raw: 0, bytes_encoded: 0 };
        if jobs.is_empty() {
            return results;
        }
        if self.codec.is_some() {
            self.ring.push(gen, global.to_vec());
        }
        for w in &mut self.workers {
            w.chunks.clear();
        }
        self.poll_accept();
        let index_of: HashMap<u64, usize> =
            jobs.iter().enumerate().map(|(i, j)| (j.client_id as u64, i)).collect();
        let chunks = msg::params_to_chunks(global, self.knobs.chunk_bytes);
        let live: Vec<usize> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.quarantined && w.transport.is_some())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            return results; // nobody to serve: the engine trains locally
        }
        let mut assigned_to: Vec<Option<u64>> = vec![None; jobs.len()];
        for (i, job) in jobs.iter().enumerate() {
            let widx = live[i % live.len()];
            self.dispatch_job(widx, gen, job, &chunks);
            assigned_to[i] = Some(self.workers[widx].id);
        }
        loop {
            if results.iter().all(|r| r.is_some()) {
                return results;
            }
            // A job whose assignment fell back to None will never be
            // served remotely; once that holds for every unserved job,
            // hand the round back to the engine.
            if results.iter().zip(&assigned_to).all(|(r, a)| r.is_some() || a.is_none()) {
                return results;
            }
            self.poll_accept();
            for widx in 0..self.workers.len() {
                self.pump_worker(widx, &mut results, &index_of);
            }
            self.service_retransmits();
            self.service_timeouts(gen, jobs, &chunks, &mut assigned_to, &results);
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn drain_incidents(&mut self) -> Vec<NetIncident> {
        std::mem::take(&mut self.incidents)
    }

    fn drain_codec_stats(&mut self) -> CodecTransferStats {
        std::mem::take(&mut self.codec_stats)
    }

    fn shutdown(&mut self) {
        for widx in 0..self.workers.len() {
            if self.workers[widx].quarantined || self.workers[widx].transport.is_none() {
                continue;
            }
            self.push_to_worker(widx, &Msg::Done);
        }
        // Short grace pump so Done frames flush, retransmit if needed,
        // and get acked before the sockets drop.
        let deadline = Instant::now() + Duration::from_millis(800);
        let no_results: HashMap<u64, usize> = HashMap::new();
        while Instant::now() < deadline {
            if self.workers.iter().all(|w| w.transport.is_none() || w.send.in_flight() == 0) {
                break;
            }
            for widx in 0..self.workers.len() {
                self.pump_worker(widx, &mut [], &no_results);
            }
            self.service_retransmits();
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn secs(s: f64) -> Duration {
    Duration::from_secs_f64(s.max(0.001))
}
