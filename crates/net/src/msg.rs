//! Application messages carried in frame payloads.
//!
//! Handshake messages (`Hello`/`Welcome`/`Reject`) ride unsequenced
//! frames of the matching [`crate::frame::FrameKind`]; everything else is
//! a sequenced `Data` frame, so model downloads, assignments and outcome
//! uploads all inherit the link layer's exactly-once in-order delivery —
//! and its resume-after-reconnect replay — with no per-message-type
//! recovery logic.
//!
//! Encoding reuses the checkpoint codec ([`BinWriter`]/[`BinReader`]):
//! little-endian, length-prefixed, NaN-exact floats, so a training outcome
//! crosses the wire with the identical bit patterns the local pool would
//! have produced.

use seafl_core::checkpoint::{BinReader, BinWriter, CodecError};
use seafl_core::{TrainOutcome, UpdateCodec};
use seafl_sim::rng::{rng_state, SimRngState};

/// One application message.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Client → server: identify and (for `worker > 0`) resume.
    Hello {
        /// Wire-protocol version ([`crate::frame::PROTOCOL_VERSION`]).
        protocol: u32,
        /// The client's config state-hash; must match the server's.
        config_hash: u64,
        /// 0 for a fresh worker, else the token from a prior `Welcome`.
        worker: u64,
        /// Next sequence offset the client expects (server replays from
        /// here on resume).
        recv_next: u64,
    },
    /// Server → client: handshake accepted.
    Welcome {
        /// Worker token to present on reconnect.
        worker: u64,
        /// Next sequence offset the server expects (the client replays
        /// its unacked frames from here).
        resume_from: u64,
    },
    /// Server → client: handshake refused (version/config mismatch,
    /// unknown worker, or resume gap).
    Reject {
        /// Human-readable cause.
        reason: String,
    },
    /// Server → client: one chunk of the round's global model.
    ModelChunk {
        /// Aggregation generation this model belongs to.
        generation: u64,
        /// Chunk index, `0..total`.
        index: u32,
        /// Total chunks in this model transfer.
        total: u32,
        /// Raw little-endian `f32` bytes.
        bytes: Vec<u8>,
    },
    /// Server → client: train one client shard.
    Assign {
        /// Aggregation generation of the model to train against.
        generation: u64,
        /// Simulated client whose shard and RNG stream to use.
        client_id: u64,
        /// Local epochs to run.
        epochs: u32,
        /// Keep per-epoch snapshots (SEAFL² partial training).
        keep_snapshots: bool,
        /// The client's batch-shuffle RNG state at dispatch.
        rng: SimRngState,
    },
    /// Client → server: one chunk of a serialized training outcome.
    OutcomeChunk {
        /// Generation echoed from the `Assign`.
        generation: u64,
        /// Client echoed from the `Assign`.
        client_id: u64,
        /// Chunk index, `0..total`.
        index: u32,
        /// Total chunks in this outcome transfer.
        total: u32,
        /// Raw outcome-blob bytes (see [`encode_outcome`]).
        bytes: Vec<u8>,
    },
    /// Server → client: the run is over; exit cleanly.
    Done,
}

impl Msg {
    /// Serialize into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = BinWriter::new();
        match self {
            Msg::Hello { protocol, config_hash, worker, recv_next } => {
                w.u8(0);
                w.u32(*protocol);
                w.u64(*config_hash);
                w.u64(*worker);
                w.u64(*recv_next);
            }
            Msg::Welcome { worker, resume_from } => {
                w.u8(1);
                w.u64(*worker);
                w.u64(*resume_from);
            }
            Msg::Reject { reason } => {
                w.u8(2);
                w.section(reason.as_bytes());
            }
            Msg::ModelChunk { generation, index, total, bytes } => {
                w.u8(3);
                w.u64(*generation);
                w.u32(*index);
                w.u32(*total);
                w.section(bytes);
            }
            Msg::Assign { generation, client_id, epochs, keep_snapshots, rng } => {
                w.u8(4);
                w.u64(*generation);
                w.u64(*client_id);
                w.u32(*epochs);
                w.bool(*keep_snapshots);
                write_rng_state(&mut w, *rng);
            }
            Msg::OutcomeChunk { generation, client_id, index, total, bytes } => {
                w.u8(5);
                w.u64(*generation);
                w.u64(*client_id);
                w.u32(*index);
                w.u32(*total);
                w.section(bytes);
            }
            Msg::Done => w.u8(6),
        }
        w.into_bytes()
    }

    /// Deserialize a frame payload; trailing bytes are an error.
    pub fn decode(payload: &[u8]) -> Result<Msg, CodecError> {
        let mut r = BinReader::new(payload);
        let msg = match r.u8()? {
            0 => Msg::Hello {
                protocol: r.u32()?,
                config_hash: r.u64()?,
                worker: r.u64()?,
                recv_next: r.u64()?,
            },
            1 => Msg::Welcome { worker: r.u64()?, resume_from: r.u64()? },
            2 => Msg::Reject { reason: String::from_utf8_lossy(r.section()?).into_owned() },
            3 => Msg::ModelChunk {
                generation: r.u64()?,
                index: r.u32()?,
                total: r.u32()?,
                bytes: r.section()?.to_vec(),
            },
            4 => Msg::Assign {
                generation: r.u64()?,
                client_id: r.u64()?,
                epochs: r.u32()?,
                keep_snapshots: r.bool()?,
                rng: read_rng_state(&mut r)?,
            },
            5 => Msg::OutcomeChunk {
                generation: r.u64()?,
                client_id: r.u64()?,
                index: r.u32()?,
                total: r.u32()?,
                bytes: r.section()?.to_vec(),
            },
            6 => Msg::Done,
            t => return Err(CodecError(format!("unknown message tag {t}"))),
        };
        r.finish()?;
        Ok(msg)
    }
}

fn write_rng_state(w: &mut BinWriter, state: SimRngState) {
    let (seed, stream, word_pos) = state;
    w.bytes(&seed);
    w.u64(stream);
    w.u128(word_pos);
}

fn read_rng_state(r: &mut BinReader<'_>) -> Result<SimRngState, CodecError> {
    // BinReader exposes RNG state only as a rebuilt SimRng; the
    // state ↔ generator conversion is exact (checkpoint resume depends on
    // it), so round back to the raw tuple.
    Ok(rng_state(&r.rng()?))
}

/// Serialize a training outcome plus the advanced RNG state for the
/// upload path. Bit-exact: floats travel as IEEE-754 bit patterns.
pub fn encode_outcome(outcome: &TrainOutcome, rng: SimRngState) -> Vec<u8> {
    let mut w = BinWriter::new();
    w.usize(outcome.snapshots.len());
    for snap in &outcome.snapshots {
        w.vec_f32(snap);
    }
    w.vec_f32(&outcome.epoch_losses);
    write_rng_state(&mut w, rng);
    w.into_bytes()
}

/// Inverse of [`encode_outcome`].
pub fn decode_outcome(bytes: &[u8]) -> Result<(TrainOutcome, SimRngState), CodecError> {
    let mut r = BinReader::new(bytes);
    let n = r.usize()?;
    let snapshots = (0..n).map(|_| r.vec_f32()).collect::<Result<Vec<_>, _>>()?;
    let epoch_losses = r.vec_f32()?;
    let rng = read_rng_state(&mut r)?;
    r.finish()?;
    Ok((TrainOutcome { snapshots, epoch_losses }, rng))
}

/// Serialize a training outcome through an active update codec: each
/// snapshot travels as the codec's encoded blob against `reference` (the
/// generation-`g` global model both sides hold bit-identically), so the
/// compressed representation is what actually crosses the socket.
///
/// The decoder must use the same codec and the same reference
/// ([`decode_outcome_coded`]); the config-hash handshake guarantees codec
/// agreement, and the server's model ring supplies the reference for the
/// echoed generation. Because the server's decode *is* the lossy
/// projection, outcomes that cross the wire coded are never re-projected
/// at the engine seam (`CodecTransferStats::coded`).
pub fn encode_outcome_coded(
    outcome: &TrainOutcome,
    rng: SimRngState,
    codec: &dyn UpdateCodec,
    reference: &[f32],
) -> Vec<u8> {
    let mut w = BinWriter::new();
    w.usize(outcome.snapshots.len());
    for snap in &outcome.snapshots {
        w.section(&codec.encode(reference, snap));
    }
    w.vec_f32(&outcome.epoch_losses);
    write_rng_state(&mut w, rng);
    w.into_bytes()
}

/// Inverse of [`encode_outcome_coded`]. Returns the decoded (projected)
/// outcome plus the raw/encoded byte tallies for this upload (raw = 4
/// bytes per decoded coordinate, encoded = blob bytes on the wire — the
/// same accounting rule the engine's codec seam uses for local slots).
pub fn decode_outcome_coded(
    bytes: &[u8],
    codec: &dyn UpdateCodec,
    reference: &[f32],
) -> Result<(TrainOutcome, SimRngState, u64, u64), CodecError> {
    let mut r = BinReader::new(bytes);
    let n = r.usize()?;
    let (mut raw, mut encoded) = (0u64, 0u64);
    let mut snapshots = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let blob = r.section()?;
        encoded += blob.len() as u64;
        let snap = codec.decode(reference, blob)?;
        raw += 4 * snap.len() as u64;
        snapshots.push(snap);
    }
    let epoch_losses = r.vec_f32()?;
    let rng = read_rng_state(&mut r)?;
    r.finish()?;
    Ok((TrainOutcome { snapshots, epoch_losses }, rng, raw, encoded))
}

/// Split a model's parameters into little-endian byte chunks of at most
/// `chunk_bytes` each (at least one chunk, even for an empty model).
pub fn params_to_chunks(params: &[f32], chunk_bytes: usize) -> Vec<Vec<u8>> {
    let mut bytes = Vec::with_capacity(params.len() * 4);
    for &p in params {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    if bytes.is_empty() {
        return vec![Vec::new()];
    }
    bytes.chunks(chunk_bytes.max(1)).map(|c| c.to_vec()).collect()
}

/// Reassemble parameters from concatenated chunk bytes.
pub fn params_from_bytes(bytes: &[u8]) -> Result<Vec<f32>, CodecError> {
    if bytes.len() % 4 != 0 {
        return Err(CodecError(format!("model byte length {} not a multiple of 4", bytes.len())));
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes"))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_sample() -> SimRngState {
        ([7u8; 32], 1234, 567_890)
    }

    #[test]
    fn every_message_roundtrips() {
        let msgs = vec![
            Msg::Hello { protocol: 1, config_hash: 0xdead_beef, worker: 0, recv_next: 0 },
            Msg::Welcome { worker: 3, resume_from: 17 },
            Msg::Reject { reason: "config hash mismatch".into() },
            Msg::ModelChunk { generation: 2, index: 1, total: 7, bytes: vec![1, 2, 3] },
            Msg::Assign {
                generation: 2,
                client_id: 5,
                epochs: 3,
                keep_snapshots: true,
                rng: rng_sample(),
            },
            Msg::OutcomeChunk {
                generation: 2,
                client_id: 5,
                index: 0,
                total: 1,
                bytes: vec![9; 40],
            },
            Msg::Done,
        ];
        for m in msgs {
            assert_eq!(Msg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Msg::Done.encode();
        bytes.push(0);
        assert!(Msg::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_message_rejected() {
        let bytes = Msg::Welcome { worker: 1, resume_from: 2 }.encode();
        assert!(Msg::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn outcome_blob_roundtrips_bit_exact() {
        let outcome = TrainOutcome {
            snapshots: vec![vec![1.5, -0.0, f32::MIN_POSITIVE], vec![2.5; 4]],
            epoch_losses: vec![0.9, 0.7],
        };
        let blob = encode_outcome(&outcome, rng_sample());
        let (back, rng) = decode_outcome(&blob).unwrap();
        assert_eq!(back, outcome);
        assert_eq!(rng, rng_sample());
        // -0.0 must survive as -0.0 (bitwise, not numeric, identity).
        assert_eq!(back.snapshots[0][1].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn coded_outcome_roundtrips_and_counts_bytes() {
        use seafl_core::{GenDelta, TopK};
        let reference = vec![0.25f32; 6];
        let outcome = TrainOutcome {
            snapshots: vec![vec![0.25, 9.0, 0.25, -0.0, 0.25, 0.25]],
            epoch_losses: vec![0.4],
        };
        // Lossless codec: decode reproduces the outcome bit-exactly.
        let blob = encode_outcome_coded(&outcome, rng_sample(), &GenDelta, &reference);
        let (back, rng, raw, encoded) = decode_outcome_coded(&blob, &GenDelta, &reference).unwrap();
        assert_eq!(back, outcome);
        assert_eq!(rng, rng_sample());
        assert_eq!(raw, 4 * 6);
        assert!(encoded > 0 && (encoded as usize) < blob.len());
        // Lossy codec: decode equals the codec's own projection.
        let topk = TopK::new(1);
        let blob = encode_outcome_coded(&outcome, rng_sample(), &topk, &reference);
        let (back, _, _, _) = decode_outcome_coded(&blob, &topk, &reference).unwrap();
        assert_eq!(back.snapshots[0], topk.project(&reference, &outcome.snapshots[0]));
        // Wrong-length reference on decode is an error for GenDelta's
        // packed mode, not a silent wrong answer.
        let blob = encode_outcome_coded(&outcome, rng_sample(), &GenDelta, &reference);
        assert!(decode_outcome_coded(&blob, &GenDelta, &reference[..3]).is_err());
    }

    #[test]
    fn params_chunk_and_reassemble() {
        let params: Vec<f32> = (0..1000).map(|i| i as f32 * 0.25).collect();
        let chunks = params_to_chunks(&params, 128);
        assert!(chunks.len() > 1);
        assert!(chunks.iter().all(|c| c.len() <= 128));
        let bytes: Vec<u8> = chunks.concat();
        assert_eq!(params_from_bytes(&bytes).unwrap(), params);
    }

    #[test]
    fn ragged_model_bytes_rejected() {
        assert!(params_from_bytes(&[1, 2, 3]).is_err());
    }
}
