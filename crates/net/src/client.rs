//! The worker client: connects, receives model + assignments, trains on
//! the local pool, uploads outcomes — and survives the wire failing under
//! it at any point.
//!
//! The client rebuilds the identical [`Environment`] from the same config
//! the server validated (the handshake's config-hash check proves it), so
//! an `Assign` only needs a client id, epoch count and the dispatched RNG
//! state to reproduce the exact training the server's local pool would
//! have run. Outcomes travel back bit-exactly; determinism is end-to-end.
//!
//! Loss handling: all application traffic rides the sequenced link, so a
//! dropped connection at *any* point — including mid-model-chunk — is
//! recovered by reconnecting with the same worker token and replaying
//! from the peer's acked offset. Outgoing frames are stamped into the
//! replay history even while the transport is down, which is what makes
//! "train, then fail to upload, then reconnect" indistinguishable from a
//! clean run to the layers above.

use crate::frame::{Frame, FrameKind, PROTOCOL_VERSION};
use crate::link::{RecvLink, SendLink};
use crate::lossy::LossyTransport;
use crate::msg::{self, Msg};
use crate::transport::{Endpoint, StreamTransport, Transport};
use crate::NetError;
use seafl_core::engine::setup::Environment;
use seafl_core::{build_codec, ExperimentConfig, TrainJob, UpdateCodec};
use seafl_sim::rng::{rng_from_state, rng_state};
use std::time::{Duration, Instant};

enum Step {
    Continue,
    Finished,
}

/// One worker process's protocol state machine.
pub struct NetClient {
    cfg: ExperimentConfig,
    endpoint: Endpoint,
    link: u64,
    env: Environment,
    send: SendLink,
    recv: RecvLink,
    worker: u64,
    /// The one-shot injected disconnect has been spent (it must not
    /// re-arm on the replacement connection).
    disconnect_spent: bool,
    /// Test hook: exit silently upon receiving the Nth `Assign`, before
    /// replying — the "worker that never returns" the server must
    /// quarantine.
    die_after_assigns: Option<u64>,
    assigns_seen: u64,
    rto: f64,
    rto_deadline: Option<Instant>,
    /// Reassembly of the in-flight model transfer.
    model_gen: u64,
    model_parts: Vec<Option<Vec<u8>>>,
    model_got: usize,
    /// The last fully received global model.
    global: Vec<f32>,
    global_gen: u64,
    /// Wire codec, armed exactly when the server's is
    /// ([`seafl_core::CodecConfig::wire_active`] on the shared config —
    /// the config-hash handshake proves agreement). Outcomes are encoded
    /// against `global`, the same reference the server's model ring
    /// holds for `global_gen`.
    codec: Option<Box<dyn UpdateCodec>>,
}

impl NetClient {
    /// Build the worker: materializes the full experiment environment
    /// (data, partition, model) locally from `cfg`.
    ///
    /// `link` is this worker's loss-stream id (give each process its own);
    /// `die_after_assigns` is the quarantine-test hook.
    pub fn new(
        cfg: ExperimentConfig,
        link: u64,
        die_after_assigns: Option<u64>,
    ) -> Result<NetClient, NetError> {
        let endpoint = match &cfg.transport.connect {
            Some(ep) => Endpoint::parse(ep)?,
            None => {
                return Err(NetError::BadEndpoint {
                    endpoint: String::new(),
                    detail: "config has no transport.connect endpoint".into(),
                })
            }
        };
        let env = Environment::build(&cfg);
        let rto = cfg.transport.rto_base;
        let replay = cfg.transport.replay_history;
        let codec = cfg.codec.wire_active().then(|| build_codec(&cfg.codec));
        Ok(NetClient {
            cfg,
            endpoint,
            link,
            env,
            send: SendLink::new(replay),
            recv: RecvLink::new(),
            worker: 0,
            disconnect_spent: false,
            die_after_assigns,
            assigns_seen: 0,
            rto,
            rto_deadline: None,
            model_gen: 0,
            model_parts: Vec::new(),
            model_got: 0,
            global: Vec::new(),
            global_gen: 0,
            codec,
        })
    }

    /// Serve assignments until the server says `Done` (or the
    /// die-after-assigns hook fires). Reconnects with resume on any
    /// transport failure; only exhausted retries or a handshake rejection
    /// give up.
    pub fn run(&mut self) -> Result<(), NetError> {
        let mut transport = self.connect_with_retry()?;
        loop {
            match self.step(&mut transport) {
                Ok(Step::Continue) => {}
                Ok(Step::Finished) => return Ok(()),
                Err(NetError::Rejected { peer, reason }) => {
                    return Err(NetError::Rejected { peer, reason })
                }
                Err(e) => {
                    eprintln!("seafl-client[{}]: link failed ({e}), reconnecting", self.link);
                    transport = self.connect_with_retry()?;
                }
            }
        }
    }

    /// Capped-exponential-backoff connect + handshake loop.
    fn connect_with_retry(&mut self) -> Result<Box<dyn Transport>, NetError> {
        let retries = self.cfg.transport.connect_retries;
        let mut last: Option<NetError> = None;
        for attempt in 0..=retries {
            if attempt > 0 {
                let backoff = (self.cfg.transport.connect_backoff_base
                    * 2f64.powi(attempt as i32 - 1))
                .min(self.cfg.transport.connect_backoff_cap);
                std::thread::sleep(Duration::from_secs_f64(backoff));
            }
            match self.try_connect() {
                Ok(t) => return Ok(t),
                // A rejection is a verdict, not a transient: stop retrying.
                Err(e @ NetError::Rejected { .. }) => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        match last {
            Some(e) => Err(e),
            None => Err(NetError::RetriesExhausted {
                context: format!("connect to {}", self.endpoint),
                attempts: retries + 1,
            }),
        }
    }

    /// One connect + Hello/Welcome handshake + replay of our unacked
    /// frames from the server's acked offset.
    fn try_connect(&mut self) -> Result<Box<dyn Transport>, NetError> {
        let mut t = StreamTransport::connect(&self.endpoint)?;
        let hello = Msg::Hello {
            protocol: PROTOCOL_VERSION,
            config_hash: self.cfg.state_hash(),
            worker: self.worker,
            recv_next: self.recv.cumulative_ack(),
        };
        t.send(&Frame::new(FrameKind::Hello, 0, hello.encode()))?;
        let deadline = Instant::now() + Duration::from_secs(10);
        let frame = loop {
            if let Some(f) = t.recv(Duration::from_millis(200))? {
                break f;
            }
            if Instant::now() >= deadline {
                return Err(NetError::Io {
                    context: format!("handshake with {}", self.endpoint),
                    source: std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "no Welcome within 10s",
                    ),
                });
            }
        };
        let peer = t.peer().to_string();
        match (frame.kind, Msg::decode(&frame.payload)) {
            (FrameKind::Welcome, Ok(Msg::Welcome { worker, resume_from })) => {
                self.worker = worker;
                let replay = self.send.replay_from(resume_from).map_err(|gap| {
                    NetError::ResumeGap { peer, requested: gap.requested, oldest: gap.oldest }
                })?;
                let mut out = self.wrap_loss(t);
                for f in &replay {
                    out.send(f)?;
                }
                if self.send.in_flight() > 0 {
                    self.rto = self.cfg.transport.rto_base;
                    self.rto_deadline = Some(Instant::now() + secs(self.rto));
                }
                Ok(out)
            }
            (FrameKind::Reject, Ok(Msg::Reject { reason })) => {
                Err(NetError::Rejected { peer, reason })
            }
            (kind, _) => Err(NetError::Malformed {
                peer,
                detail: format!("expected Welcome or Reject, got {kind:?}"),
            }),
        }
    }

    /// Apply the configured loss model to a fresh connection. The forced
    /// disconnect arms only on the first lossy connection — a reconnect
    /// must not re-trip it, or the run would never finish.
    fn wrap_loss(&mut self, t: StreamTransport) -> Box<dyn Transport> {
        let mut loss = self.cfg.transport.loss;
        if self.disconnect_spent {
            loss.disconnect_after = None;
        } else if loss.disconnect_after.is_some() {
            self.disconnect_spent = true;
        }
        if loss.is_noop() {
            Box::new(t)
        } else {
            Box::new(LossyTransport::new(t, loss, self.cfg.seed, self.link))
        }
    }

    /// Stamp a sequenced message and attempt to put it on the wire.
    /// Returns whether the transport is still healthy — the frame is in
    /// the replay history either way, so a `false` only means "reconnect
    /// soon", never "data lost".
    fn queue_msg(&mut self, t: &mut Box<dyn Transport>, message: &Msg) -> bool {
        let frame = self.send.stamp(message.encode());
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(Instant::now() + secs(self.rto));
        }
        t.send(&frame).is_ok()
    }

    /// Go-back-N retransmit of our unacked frames once the RTO expires.
    fn service_retransmit(&mut self, t: &mut Box<dyn Transport>) {
        if self.send.in_flight() == 0 {
            self.rto_deadline = None;
            return;
        }
        let now = Instant::now();
        let Some(deadline) = self.rto_deadline else {
            self.rto_deadline = Some(now + secs(self.rto));
            return;
        };
        if now < deadline {
            return;
        }
        let frames: Vec<Frame> = self.send.unacked().cloned().collect();
        for f in &frames {
            if t.send(f).is_err() {
                break; // recv will surface the failure and reconnect
            }
        }
        self.rto = (self.rto * 2.0).min(self.cfg.transport.rto_cap);
        self.rto_deadline = Some(now + secs(self.rto));
    }

    /// One poll step: retransmit if due, receive one frame, process it.
    fn step(&mut self, t: &mut Box<dyn Transport>) -> Result<Step, NetError> {
        self.service_retransmit(t);
        let frame = match t.recv(Duration::from_millis(20))? {
            Some(f) => f,
            None => return Ok(Step::Continue),
        };
        match frame.kind {
            FrameKind::Ack => {
                if self.send.on_ack(frame.offset) {
                    self.rto = self.cfg.transport.rto_base;
                    self.rto_deadline =
                        (self.send.in_flight() > 0).then(|| Instant::now() + secs(self.rto));
                }
                Ok(Step::Continue)
            }
            FrameKind::Data => {
                let (ready, _dup) = self.recv.accept(frame);
                // Ack every data frame, duplicates included — the ack the
                // peer missed is exactly why it retransmitted.
                let mut healthy = t
                    .send(&Frame::new(FrameKind::Ack, self.recv.cumulative_ack(), Vec::new()))
                    .is_ok();
                let mut finished = false;
                // Every ready frame MUST be processed even once the
                // transport dies mid-batch: the receive link already
                // advanced past them, so the server will never replay
                // them. Outgoing traffic they generate lands in the
                // replay history and survives the reconnect.
                for f in ready {
                    match Msg::decode(&f.payload) {
                        Ok(message) => {
                            let (ok, fin) = self.handle(t, message);
                            healthy &= ok;
                            finished |= fin;
                        }
                        Err(e) => {
                            eprintln!("seafl-client[{}]: undecodable message: {e}", self.link)
                        }
                    }
                }
                if finished {
                    return Ok(Step::Finished);
                }
                if healthy {
                    Ok(Step::Continue)
                } else {
                    Err(NetError::Disconnected { peer: t.peer().to_string() })
                }
            }
            FrameKind::Hello | FrameKind::Welcome | FrameKind::Reject => Ok(Step::Continue),
        }
    }

    /// Process one delivered message. Returns `(transport_healthy,
    /// finished)`.
    fn handle(&mut self, t: &mut Box<dyn Transport>, message: Msg) -> (bool, bool) {
        match message {
            Msg::ModelChunk { generation, index, total, bytes } => {
                self.on_model_chunk(generation, index, total, bytes);
                (true, false)
            }
            Msg::Assign { generation, client_id, epochs, keep_snapshots, rng } => {
                self.assigns_seen += 1;
                if self.die_after_assigns.is_some_and(|n| self.assigns_seen >= n) {
                    eprintln!(
                        "seafl-client[{}]: dying on assign #{} as instructed",
                        self.link, self.assigns_seen
                    );
                    return (true, true);
                }
                let ok =
                    self.train_and_upload(t, generation, client_id, epochs, keep_snapshots, rng);
                (ok, false)
            }
            Msg::Done => (true, true),
            other => {
                eprintln!("seafl-client[{}]: unexpected {other:?}", self.link);
                (true, false)
            }
        }
    }

    fn on_model_chunk(&mut self, generation: u64, index: u32, total: u32, bytes: Vec<u8>) {
        if total == 0 || index >= total || total > (1 << 16) {
            eprintln!("seafl-client[{}]: implausible model chunk header, ignoring", self.link);
            return;
        }
        if generation != self.model_gen || self.model_parts.len() != total as usize {
            self.model_gen = generation;
            self.model_parts = vec![None; total as usize];
            self.model_got = 0;
        }
        if self.model_parts[index as usize].is_none() {
            self.model_parts[index as usize] = Some(bytes);
            self.model_got += 1;
        }
        if self.model_got < self.model_parts.len() {
            return;
        }
        let blob: Vec<u8> = std::mem::take(&mut self.model_parts)
            .into_iter()
            .map(|p| p.expect("all parts present"))
            .collect::<Vec<_>>()
            .concat();
        self.model_got = 0;
        match msg::params_from_bytes(&blob) {
            Ok(params) => {
                self.global = params;
                self.global_gen = generation;
            }
            Err(e) => eprintln!("seafl-client[{}]: model reassembly failed: {e}", self.link),
        }
    }

    fn train_and_upload(
        &mut self,
        t: &mut Box<dyn Transport>,
        generation: u64,
        client_id: u64,
        epochs: u32,
        keep_snapshots: bool,
        rng: seafl_sim::rng::SimRngState,
    ) -> bool {
        if generation != self.global_gen {
            // Cannot happen on a healthy sequenced link (chunks precede
            // the assign); drop the job and let the server's timeout
            // logic reassign it.
            eprintln!(
                "seafl-client[{}]: assign for generation {generation} but model is {}, skipping",
                self.link, self.global_gen
            );
            return true;
        }
        let k = client_id as usize;
        if k >= self.env.client_data.len() {
            eprintln!("seafl-client[{}]: assign for unknown client {k}, skipping", self.link);
            return true;
        }
        let job = TrainJob {
            client_id: k,
            data: &self.env.client_data[k],
            epochs: epochs as usize,
            rng: rng_from_state(rng),
            keep_snapshots,
        };
        let mut out = self.env.pool.train_cohort(&self.global, vec![job]);
        let (outcome, rng_after) = out.pop().expect("one job in, one outcome out");
        let blob = match self.codec.as_deref() {
            Some(codec) => {
                msg::encode_outcome_coded(&outcome, rng_state(&rng_after), codec, &self.global)
            }
            None => msg::encode_outcome(&outcome, rng_state(&rng_after)),
        };
        let chunk_bytes = self.cfg.transport.chunk_bytes.max(1);
        let chunks: Vec<&[u8]> = blob.chunks(chunk_bytes).collect();
        let total = chunks.len() as u32;
        let mut healthy = true;
        for (ci, c) in chunks.iter().enumerate() {
            let message = Msg::OutcomeChunk {
                generation,
                client_id,
                index: ci as u32,
                total,
                bytes: c.to_vec(),
            };
            healthy &= self.queue_msg(t, &message);
        }
        healthy
    }
}

fn secs(s: f64) -> Duration {
    Duration::from_secs_f64(s.max(0.001))
}
