//! # seafl-net
//!
//! A resumable wire protocol that runs the SEAFL fleet over real, lossy
//! transports (TCP or unix-domain sockets) while reproducing the
//! simulator's results **bit for bit**.
//!
//! The split: everything that decides the experiment — virtual clock,
//! admission, aggregation, evaluation — stays in the server process inside
//! the unchanged `seafl-core` event loop. Only the training *computation*
//! is remote: the server installs a [`server::NetServer`] as the engine's
//! [`seafl_core::CohortTrainer`], ships each cohort's global model and
//! per-client RNG state to worker processes, and folds the returned
//! outcomes back in exactly where the local thread pool's results would
//! have gone. Packet loss, reconnects and retransmits change wall-clock
//! time, never results; a worker that dies outright is quarantined and its
//! jobs fall back to the server's local pool, so the run still completes
//! with the exact simulated digests.
//!
//! Layers, bottom up:
//!
//! * [`frame`] — length-prefixed, FNV-checksummed frames over a byte
//!   stream; hostile input (torn, corrupt, oversized) is detected, never
//!   trusted.
//! * [`link`] — offset-numbered frames, cumulative acks, a bounded
//!   sender-side replay history and a deduplicating receiver: exactly-once
//!   in-order delivery plus resume-after-reconnect.
//! * [`msg`] — the application messages (handshake, model chunks,
//!   assignments, outcome chunks), encoded with the checkpoint codec.
//! * [`transport`] — the [`transport::Transport`] seam: blocking
//!   frame-granular send/recv over TCP or UDS.
//! * [`lossy`] — deterministic, seeded fault injection (drop / duplicate /
//!   reorder / delay / forced disconnect) wrapping any transport.
//! * [`server`] / [`client`] — the two endpoints; `src/bin/` wraps them as
//!   the `seafl-server` and `seafl-client` binaries.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod link;
pub mod lossy;
pub mod msg;
pub mod preset;
pub mod server;
pub mod transport;

pub use client::NetClient;
pub use frame::{Frame, FrameDecoder, FrameError, FrameKind, PROTOCOL_VERSION};
pub use link::{RecvLink, ReplayGap, SendLink};
pub use lossy::LossyTransport;
pub use msg::Msg;
pub use server::{NetServer, NetStats};
pub use transport::{Endpoint, NetListener, StreamTransport, Transport};

/// Every failure carries the endpoint or peer it happened on — a refused
/// bind, a dead peer and a corrupt stream all read differently in logs.
#[derive(Debug)]
pub enum NetError {
    /// An I/O operation failed; `context` names the operation and endpoint.
    Io {
        /// What was being attempted, on which endpoint/peer.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The peer closed the connection.
    Disconnected {
        /// Peer whose stream ended.
        peer: String,
    },
    /// The peer's byte stream violated the frame format.
    Frame {
        /// Peer that produced the bad bytes.
        peer: String,
        /// The framing violation.
        source: FrameError,
    },
    /// A frame payload failed message decoding.
    Malformed {
        /// Peer that sent the payload.
        peer: String,
        /// Decoder's complaint.
        detail: String,
    },
    /// The peer refused our handshake.
    Rejected {
        /// Peer that refused.
        peer: String,
        /// Its stated reason.
        reason: String,
    },
    /// A resume asked for frames the bounded replay history has evicted.
    ResumeGap {
        /// Peer that asked.
        peer: String,
        /// Offset it wanted to resume from.
        requested: u64,
        /// Oldest offset still retained.
        oldest: u64,
    },
    /// An endpoint string did not parse.
    BadEndpoint {
        /// The offending string.
        endpoint: String,
        /// Why it was refused.
        detail: String,
    },
    /// Connect/reconnect gave up after the configured attempts.
    RetriesExhausted {
        /// What was being retried, against which endpoint.
        context: String,
        /// Attempts made.
        attempts: u32,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io { context, source } => write!(f, "net: {context}: {source}"),
            NetError::Disconnected { peer } => write!(f, "net: {peer}: connection closed by peer"),
            NetError::Frame { peer, source } => write!(f, "net: {peer}: {source}"),
            NetError::Malformed { peer, detail } => {
                write!(f, "net: {peer}: malformed message: {detail}")
            }
            NetError::Rejected { peer, reason } => {
                write!(f, "net: {peer}: handshake rejected: {reason}")
            }
            NetError::ResumeGap { peer, requested, oldest } => write!(
                f,
                "net: {peer}: resume from offset {requested} impossible, replay history starts at {oldest}"
            ),
            NetError::BadEndpoint { endpoint, detail } => {
                write!(f, "net: bad endpoint {endpoint:?}: {detail}")
            }
            NetError::RetriesExhausted { context, attempts } => {
                write!(f, "net: {context}: gave up after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io { source, .. } => Some(source),
            NetError::Frame { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl NetError {
    /// Build the Io variant with context, for `map_err` chains.
    pub fn io(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> NetError {
        let context = context.into();
        move |source| NetError::Io { context, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_carry_context() {
        let e = NetError::io("bind tcp://127.0.0.1:1")(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "denied",
        ));
        let s = e.to_string();
        assert!(s.contains("bind tcp://127.0.0.1:1"), "missing context in {s:?}");
        assert!(s.contains("denied"), "missing cause in {s:?}");

        let gap = NetError::ResumeGap { peer: "tcp://x".into(), requested: 3, oldest: 9 };
        assert!(gap.to_string().contains("offset 3"));
        assert!(gap.to_string().contains("starts at 9"));
    }
}
