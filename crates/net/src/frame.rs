//! Length-prefixed, checksummed wire frames.
//!
//! Every byte on a SEAFL link is part of a frame:
//!
//! ```text
//! offset  size  field
//!      0     4  magic     b"SFW1" (protocol + wire-format version)
//!      4     1  kind      frame kind discriminant
//!      5     8  offset    u64 LE — sequence number (Data), cumulative
//!                         ack (Ack), 0 otherwise
//!     13     4  len       u32 LE — payload length in bytes
//!     17     8  checksum  u64 LE — FNV-1a 64 over kind ‖ offset ‖ len
//!                         ‖ payload
//!     25   len  payload
//! ```
//!
//! The decoder is incremental: feed it whatever the socket produced and it
//! yields zero or more complete frames, holding torn tails until the rest
//! arrives. Corruption (bad magic, unknown kind, oversized length, checksum
//! mismatch) is a hard error — stream framing cannot be trusted past a bad
//! header, so the connection is torn down and the sequenced-link layer
//! recovers by replay on reconnect.

use seafl_sim::digest::{fnv1a64_extend, FNV_OFFSET};

/// Frame magic: "SEAFL wire, format 1".
pub const MAGIC: [u8; 4] = *b"SFW1";

/// Fixed header size in bytes (everything before the payload).
pub const HEADER_LEN: usize = 25;

/// Wire-protocol version carried in the `Hello` handshake. Bump on any
/// incompatible change to frames or messages.
pub const PROTOCOL_VERSION: u32 = 1;

/// Largest payload a decoder accepts by default (8 MiB). A length prefix
/// beyond the limit is treated as corruption, not as an allocation request.
pub const DEFAULT_MAX_PAYLOAD: usize = 8 << 20;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server handshake (fresh connect or resume).
    Hello,
    /// Server → client handshake accept.
    Welcome,
    /// Sequenced message bytes (`offset` is the sequence number).
    Data,
    /// Cumulative acknowledgement (`offset` is the receiver's next
    /// expected sequence number; everything below it is delivered).
    Ack,
    /// Handshake rejection; payload is a UTF-8 reason.
    Reject,
}

impl FrameKind {
    fn as_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::Welcome => 1,
            FrameKind::Data => 2,
            FrameKind::Ack => 3,
            FrameKind::Reject => 4,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::Welcome),
            2 => Some(FrameKind::Data),
            3 => Some(FrameKind::Ack),
            4 => Some(FrameKind::Reject),
            _ => None,
        }
    }
}

/// One wire frame (header semantics plus payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Sequence number (Data), cumulative ack (Ack), or 0.
    pub offset: u64,
    /// Message bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Build a frame.
    pub fn new(kind: FrameKind, offset: u64, payload: Vec<u8>) -> Self {
        Frame { kind, offset, payload }
    }

    /// Bytes this frame occupies on the wire.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let kind = self.kind.as_u8();
        let len = self.payload.len() as u32;
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&MAGIC);
        out.push(kind);
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&checksum(kind, self.offset, len, &self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// FNV-1a 64 over the covered header fields and the payload.
fn checksum(kind: u8, offset: u64, len: u32, payload: &[u8]) -> u64 {
    let mut h = fnv1a64_extend(FNV_OFFSET, &[kind]);
    h = fnv1a64_extend(h, &offset.to_le_bytes());
    h = fnv1a64_extend(h, &len.to_le_bytes());
    fnv1a64_extend(h, payload)
}

/// Why a byte stream stopped decoding. All variants are fatal for the
/// connection that produced them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The four magic bytes were wrong — the stream is not (or no longer)
    /// frame-aligned.
    BadMagic([u8; 4]),
    /// Unknown frame-kind discriminant.
    BadKind(u8),
    /// The length prefix exceeds the decoder's payload cap.
    Oversized {
        /// Length the header claimed.
        len: u32,
        /// The decoder's cap.
        max: usize,
    },
    /// The stored checksum does not match the recomputed one.
    Checksum {
        /// Checksum carried in the header.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload length {len} exceeds cap {max}")
            }
            FrameError::Checksum { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch (stored {stored:016x}, computed {computed:016x})"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder over an untrusted byte stream.
pub struct FrameDecoder {
    buf: Vec<u8>,
    max_payload: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// Decoder with the [`DEFAULT_MAX_PAYLOAD`] cap.
    pub fn new() -> Self {
        FrameDecoder::with_max_payload(DEFAULT_MAX_PAYLOAD)
    }

    /// Decoder with an explicit payload cap.
    pub fn with_max_payload(max_payload: usize) -> Self {
        FrameDecoder { buf: Vec::new(), max_payload }
    }

    /// Append raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decodable (a torn frame tail, or 0).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame. `Ok(None)` means "need more bytes" —
    /// a torn frame is not an error until the connection closes under it.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if self.buf[0..4] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&self.buf[0..4]);
            return Err(FrameError::BadMagic(m));
        }
        let kind_byte = self.buf[4];
        let kind = FrameKind::from_u8(kind_byte).ok_or(FrameError::BadKind(kind_byte))?;
        let offset = u64::from_le_bytes(self.buf[5..13].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(self.buf[13..17].try_into().expect("4 bytes"));
        if len as usize > self.max_payload {
            return Err(FrameError::Oversized { len, max: self.max_payload });
        }
        let stored = u64::from_le_bytes(self.buf[17..25].try_into().expect("8 bytes"));
        let total = HEADER_LEN + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = &self.buf[HEADER_LEN..total];
        let computed = checksum(kind_byte, offset, len, payload);
        if computed != stored {
            return Err(FrameError::Checksum { stored, computed });
        }
        let frame = Frame { kind, offset, payload: payload.to_vec() };
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(FrameKind::Data, 42, vec![1, 2, 3, 4, 5])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let frames = vec![
            Frame::new(FrameKind::Hello, 0, vec![9; 17]),
            Frame::new(FrameKind::Welcome, 0, Vec::new()),
            Frame::new(FrameKind::Data, u64::MAX, vec![0; 1000]),
            Frame::new(FrameKind::Ack, 7, Vec::new()),
            Frame::new(FrameKind::Reject, 0, b"nope".to_vec()),
        ];
        let mut dec = FrameDecoder::new();
        for f in &frames {
            dec.feed(&f.encode());
        }
        for f in &frames {
            assert_eq!(dec.next_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn torn_frames_reassemble_byte_by_byte() {
        let bytes = sample().encode();
        let mut dec = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            dec.feed(std::slice::from_ref(b));
            let got = dec.next_frame().unwrap();
            if i + 1 < bytes.len() {
                assert_eq!(got, None, "frame completed early at byte {i}");
            } else {
                assert_eq!(got, Some(sample()));
            }
        }
    }

    #[test]
    fn truncated_frame_reports_leftover_bytes() {
        let bytes = sample().encode();
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes[..bytes.len() - 2]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), bytes.len() - 2);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut bytes = sample().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        match dec.next_frame() {
            Err(FrameError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_offset_fails_checksum() {
        let mut bytes = sample().encode();
        bytes[6] ^= 0x80; // inside the offset field
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(matches!(dec.next_frame(), Err(FrameError::Checksum { .. })));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocating() {
        let mut bytes = sample().encode();
        bytes[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        match dec.next_frame() {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, DEFAULT_MAX_PAYLOAD);
            }
            other => panic!("expected oversized error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut bytes = sample().encode();
        bytes[4] = 200;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_frame(), Err(FrameError::BadKind(200)));
    }

    #[test]
    fn custom_payload_cap_enforced() {
        let frame = Frame::new(FrameKind::Data, 0, vec![0; 100]);
        let mut dec = FrameDecoder::with_max_payload(64);
        dec.feed(&frame.encode());
        assert!(matches!(dec.next_frame(), Err(FrameError::Oversized { len: 100, max: 64 })));
    }
}
