//! Sequenced, loss-tolerant link state: offset-numbered frames with a
//! bounded sender-side replay history and a deduplicating, reordering
//! receiver.
//!
//! This is the layer that turns a lossy byte pipe into exactly-once,
//! in-order message delivery:
//!
//! * the **sender** stamps each message with the next sequence offset and
//!   retains it in a bounded history until the peer's cumulative ack
//!   passes it — retained frames answer both RTO retransmits and
//!   resume-after-reconnect replay;
//! * the **receiver** delivers frames strictly in offset order, parking
//!   out-of-order arrivals and silently swallowing duplicates (so a
//!   retransmitted or replayed frame is processed at most once).
//!
//! A reconnecting peer announces the next offset it expects; the sender
//! replays from there, or reports a [`ReplayGap`] if the bounded history
//! has already evicted the requested range (the connection can then only
//! be rejected — state was lost).

use crate::frame::{Frame, FrameKind};
use std::collections::{BTreeMap, VecDeque};

/// Sender half of a sequenced link.
#[derive(Debug)]
pub struct SendLink {
    next_offset: u64,
    acked: u64,
    history: VecDeque<Frame>,
    cap: usize,
}

/// A resume request reached back past the bounded replay history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayGap {
    /// Offset the peer asked to resume from.
    pub requested: u64,
    /// Oldest offset still retained.
    pub oldest: u64,
}

impl SendLink {
    /// Fresh sender keeping at most `cap` unacked frames for replay.
    pub fn new(cap: usize) -> Self {
        SendLink { next_offset: 0, acked: 0, history: VecDeque::new(), cap: cap.max(1) }
    }

    /// Stamp `payload` as the next Data frame and retain it for replay.
    /// If the history is full the oldest retained frame is evicted — past
    /// that point a peer needing it back can only be refused.
    pub fn stamp(&mut self, payload: Vec<u8>) -> Frame {
        let frame = Frame::new(FrameKind::Data, self.next_offset, payload);
        self.next_offset += 1;
        self.history.push_back(frame.clone());
        while self.history.len() > self.cap {
            self.history.pop_front();
        }
        frame
    }

    /// Process a cumulative ack: everything below `upto` is delivered and
    /// can be dropped from the history. Returns `true` if the ack advanced
    /// (i.e. new frames were confirmed).
    pub fn on_ack(&mut self, upto: u64) -> bool {
        if upto <= self.acked {
            return false;
        }
        self.acked = upto.min(self.next_offset);
        while self.history.front().is_some_and(|f| f.offset < self.acked) {
            self.history.pop_front();
        }
        true
    }

    /// Frames sent but not yet covered by a cumulative ack, oldest first
    /// (the go-back-N retransmit set).
    pub fn unacked(&self) -> impl Iterator<Item = &Frame> {
        self.history.iter().filter(move |f| f.offset >= self.acked)
    }

    /// Number of unacked frames in flight.
    pub fn in_flight(&self) -> usize {
        (self.next_offset - self.acked) as usize
    }

    /// Replay every retained frame from `from` (the resuming peer's next
    /// expected offset) onward, or report the gap if the bounded history
    /// no longer reaches back that far.
    pub fn replay_from(&self, from: u64) -> Result<Vec<Frame>, ReplayGap> {
        if from >= self.next_offset {
            return Ok(Vec::new());
        }
        let oldest = self.next_offset - self.history.len() as u64;
        if from < oldest {
            return Err(ReplayGap { requested: from, oldest });
        }
        Ok(self.history.iter().filter(|f| f.offset >= from).cloned().collect())
    }

    /// Next sequence offset to be assigned.
    pub fn next_offset(&self) -> u64 {
        self.next_offset
    }

    /// Highest cumulative ack seen.
    pub fn acked(&self) -> u64 {
        self.acked
    }
}

/// Receiver half of a sequenced link.
#[derive(Debug, Default)]
pub struct RecvLink {
    next: u64,
    pending: BTreeMap<u64, Frame>,
}

impl RecvLink {
    /// Fresh receiver expecting offset 0.
    pub fn new() -> Self {
        RecvLink::default()
    }

    /// Accept one Data frame. Returns the frames now deliverable in
    /// order (possibly none, if `frame` arrived ahead of a gap) and
    /// whether `frame` was a duplicate of something already delivered or
    /// parked (duplicates produce no deliveries and mutate nothing).
    pub fn accept(&mut self, frame: Frame) -> (Vec<Frame>, bool) {
        if frame.offset < self.next || self.pending.contains_key(&frame.offset) {
            return (Vec::new(), true);
        }
        self.pending.insert(frame.offset, frame);
        let mut ready = Vec::new();
        while let Some(f) = self.pending.remove(&self.next) {
            self.next += 1;
            ready.push(f);
        }
        (ready, false)
    }

    /// Cumulative ack to advertise: the next offset this receiver expects.
    pub fn cumulative_ack(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(link: &mut SendLink, byte: u8) -> Frame {
        link.stamp(vec![byte])
    }

    #[test]
    fn in_order_delivery_and_acks() {
        let mut tx = SendLink::new(8);
        let mut rx = RecvLink::new();
        for i in 0..5u8 {
            let f = data(&mut tx, i);
            let (ready, dup) = rx.accept(f);
            assert!(!dup);
            assert_eq!(ready.len(), 1);
            assert_eq!(ready[0].payload, vec![i]);
        }
        assert_eq!(rx.cumulative_ack(), 5);
        assert!(tx.on_ack(rx.cumulative_ack()));
        assert_eq!(tx.in_flight(), 0);
        assert_eq!(tx.unacked().count(), 0);
    }

    #[test]
    fn reordered_frames_deliver_in_offset_order() {
        let mut tx = SendLink::new(8);
        let f0 = data(&mut tx, 0);
        let f1 = data(&mut tx, 1);
        let f2 = data(&mut tx, 2);
        let mut rx = RecvLink::new();
        assert_eq!(rx.accept(f2).0.len(), 0);
        assert_eq!(rx.accept(f0).0.len(), 1);
        let (ready, _) = rx.accept(f1);
        assert_eq!(
            ready.iter().map(|f| f.offset).collect::<Vec<_>>(),
            vec![1, 2],
            "parked frame must flush once the gap fills"
        );
        assert_eq!(rx.cumulative_ack(), 3);
    }

    #[test]
    fn duplicates_are_swallowed_exactly_once_semantics() {
        let mut tx = SendLink::new(8);
        let f0 = data(&mut tx, 0);
        let mut rx = RecvLink::new();
        assert_eq!(rx.accept(f0.clone()), (vec![f0.clone()], false));
        // Redelivery of an already-delivered frame: no output, flagged dup.
        assert_eq!(rx.accept(f0.clone()), (Vec::new(), true));
        // Duplicate of a parked (not yet deliverable) frame likewise.
        let _f1 = data(&mut tx, 1);
        let f2 = data(&mut tx, 2);
        assert_eq!(rx.accept(f2.clone()), (Vec::new(), false));
        assert_eq!(rx.accept(f2), (Vec::new(), true));
        assert_eq!(rx.cumulative_ack(), 1);
    }

    #[test]
    fn replay_resumes_from_requested_offset() {
        let mut tx = SendLink::new(8);
        for i in 0..6u8 {
            data(&mut tx, i);
        }
        tx.on_ack(2);
        let replay = tx.replay_from(4).unwrap();
        assert_eq!(replay.iter().map(|f| f.offset).collect::<Vec<_>>(), vec![4, 5]);
        // Peer fully caught up: nothing to replay.
        assert_eq!(tx.replay_from(6).unwrap(), Vec::new());
    }

    #[test]
    fn bounded_history_reports_gap() {
        let mut tx = SendLink::new(3);
        for i in 0..10u8 {
            data(&mut tx, i);
        }
        // Only offsets 7, 8, 9 retained.
        assert_eq!(tx.replay_from(7).unwrap().len(), 3);
        assert_eq!(tx.replay_from(5), Err(ReplayGap { requested: 5, oldest: 7 }));
    }

    #[test]
    fn stale_ack_does_not_regress() {
        let mut tx = SendLink::new(8);
        for i in 0..4u8 {
            data(&mut tx, i);
        }
        assert!(tx.on_ack(3));
        assert!(!tx.on_ack(1), "stale cumulative ack must be ignored");
        assert_eq!(tx.acked(), 3);
        assert_eq!(tx.in_flight(), 1);
    }
}
