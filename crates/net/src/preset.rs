//! The shared loopback experiment preset.
//!
//! Server, clients and the in-process simulator reference must all build
//! **the same** [`ExperimentConfig`] from `(seed, algorithm)` — the
//! handshake's config-hash check only proves the peers agree with each
//! other, while digest comparison against a simulated run additionally
//! needs the test harness to construct the identical experiment. Keeping
//! the preset in one place makes that a function call instead of a
//! convention.

use seafl_core::{Algorithm, CodecConfig, CodecStage, ExperimentConfig};
use seafl_nn::ModelKind;
use seafl_sim::FleetConfig;

/// Algorithm from its stable label (the `--algorithm` flag).
///
/// # Panics
///
/// On an unknown label — binaries surface this at argument parsing.
pub fn algorithm_by_name(name: &str) -> Algorithm {
    match name {
        "seafl" => Algorithm::seafl(5, 3, Some(4)),
        "seafl2" => Algorithm::seafl2(5, 3, 4),
        "fedbuff" => Algorithm::fedbuff(5, 3),
        "fedasync" => Algorithm::fedasync(5),
        "fedavg" => Algorithm::FedAvg { clients_per_round: 6 },
        "fedstale" => Algorithm::fedstale(5, 3),
        other => panic!(
            "unknown algorithm {other:?} (try seafl, seafl2, fedbuff, fedasync, fedavg, fedstale)"
        ),
    }
}

/// Codec preset from its stable label (the `--codec` flag). Labels are
/// `+`-separated stages with an optional trailing `ef` for error
/// feedback: `identity`, `topk`, `int8`, `gendelta`, `topk+int8`,
/// `topk+ef`, … Every loopback process must pass the same label — the
/// codec config is part of the state hash, so a mismatch is caught at
/// the handshake.
pub fn codec_by_name(name: &str) -> Result<CodecConfig, String> {
    let mut cfg = CodecConfig::default();
    let parts: Vec<&str> = name.split('+').collect();
    for (i, part) in parts.iter().enumerate() {
        match *part {
            "identity" => {}
            "topk" => cfg.stages.push(CodecStage::TopK { k: 2048 }),
            "int8" => cfg.stages.push(CodecStage::QuantInt8),
            "gendelta" => cfg.stages.push(CodecStage::GenDelta),
            "ef" if i == parts.len() - 1 && i > 0 => cfg.error_feedback = true,
            other => {
                return Err(format!(
                    "unknown codec part {other:?} in {name:?} \
                     (try identity, topk, int8, gendelta, topk+int8, topk+ef)"
                ))
            }
        }
    }
    Ok(cfg)
}

/// Small fixed-length experiment every loopback process agrees on:
/// 8 clients on a Pareto fleet, a tiny MLP (≈12.7k parameters, so a model
/// transfer spans several chunks at the test chunk size), 6 rounds, no
/// accuracy early-stop (fixed round count keeps wall-clock bounded and
/// digests comparable).
pub fn loopback_config(seed: u64, algorithm_name: &str) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(seed, algorithm_by_name(algorithm_name));
    cfg.num_clients = 8;
    cfg.fleet = FleetConfig::pareto_fleet(8);
    cfg.train_per_class = 20;
    cfg.test_per_class = 5;
    cfg.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    cfg.local_epochs = 2;
    cfg.max_rounds = 6;
    cfg.max_sim_time = 100_000.0;
    cfg.stop_at_accuracy = None;
    cfg.threads = 1;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_deterministic_and_hash_stable() {
        let a = loopback_config(11, "seafl");
        let b = loopback_config(11, "seafl");
        assert_eq!(a.state_hash(), b.state_hash());
        let c = loopback_config(12, "seafl");
        assert_ne!(a.state_hash(), c.state_hash());
        let d = loopback_config(11, "fedbuff");
        assert_ne!(a.state_hash(), d.state_hash());
    }

    #[test]
    fn transport_knobs_do_not_move_the_preset_hash() {
        let a = loopback_config(5, "seafl2");
        let mut b = loopback_config(5, "seafl2");
        b.transport.listen = Some("tcp://127.0.0.1:0".into());
        b.transport.chunk_bytes = 1024;
        b.transport.loss.drop_prob = 0.3;
        assert_eq!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn codec_labels_parse_and_roundtrip() {
        assert!(codec_by_name("identity").unwrap().is_identity());
        let topk = codec_by_name("topk").unwrap();
        assert_eq!(topk.stages, vec![CodecStage::TopK { k: 2048 }]);
        assert!(!topk.error_feedback);
        let ef = codec_by_name("topk+ef").unwrap();
        assert!(ef.error_feedback);
        assert_eq!(ef.label(), "topk+ef");
        let pipe = codec_by_name("topk+int8").unwrap();
        assert_eq!(pipe.stages, vec![CodecStage::TopK { k: 2048 }, CodecStage::QuantInt8]);
        assert!(codec_by_name("gendelta").unwrap().is_lossless());
        assert!(codec_by_name("zstd").is_err());
        assert!(codec_by_name("ef").is_err(), "bare ef has no stage to feed back for");
    }

    #[test]
    fn codec_moves_the_preset_hash() {
        let a = loopback_config(5, "seafl");
        let mut b = loopback_config(5, "seafl");
        b.codec = codec_by_name("topk").unwrap();
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn preset_validates() {
        loopback_config(1, "seafl").validate();
        loopback_config(1, "fedavg").validate();
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn unknown_algorithm_panics() {
        algorithm_by_name("sgd");
    }
}
