//! Deterministic, seeded fault injection over any [`Transport`].
//!
//! Wraps a transport's **send side** and gives each outgoing frame a fate
//! drawn from [`LossConfig::fate`] — a pure counter-indexed draw on the
//! simulator's `NET_LOSS_BASE + link` stream, so a given (seed, link)
//! always drops/duplicates/reorders the same frame indices no matter how
//! the processes interleave. The receive side passes through untouched;
//! loss in the opposite direction belongs to the peer's own wrapper.
//!
//! `disconnect_after` arms a one-shot forced failure: the Nth send
//! attempt errors as if the kernel reset the connection, which is exactly
//! the mid-chunk disconnect the resume protocol must survive.

use crate::frame::Frame;
use crate::transport::Transport;
use crate::NetError;
use seafl_sim::{FrameFate, LossConfig};
use std::time::Duration;

/// A [`Transport`] whose outgoing frames suffer seeded, reproducible
/// faults.
pub struct LossyTransport<T: Transport> {
    inner: T,
    cfg: LossConfig,
    seed: u64,
    link: u64,
    sent: u64,
    held: Option<Frame>,
    tripped: bool,
}

impl<T: Transport> LossyTransport<T> {
    /// Wrap `inner`; fates are drawn from `(seed, link, frame_index)`.
    pub fn new(inner: T, cfg: LossConfig, seed: u64, link: u64) -> Self {
        LossyTransport { inner, cfg, seed, link, sent: 0, held: None, tripped: false }
    }

    /// Frames offered to `send` so far (including dropped ones).
    pub fn frames_sent(&self) -> u64 {
        self.sent
    }

    /// Whether the one-shot forced disconnect has already fired.
    pub fn disconnect_tripped(&self) -> bool {
        self.tripped
    }
}

impl<T: Transport> Transport for LossyTransport<T> {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        if let Some(n) = self.cfg.disconnect_after {
            if !self.tripped && self.sent >= n {
                self.tripped = true;
                return Err(NetError::Io {
                    context: format!(
                        "injected disconnect after {n} frames on link {} to {}",
                        self.link,
                        self.inner.peer()
                    ),
                    source: std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "loss injection",
                    ),
                });
            }
        }
        let fate = self.cfg.fate(self.seed, self.link, self.sent);
        self.sent += 1;
        // A frame held back by an earlier Reorder fate goes out right
        // after the current one — a one-slot swap, not unbounded delay.
        let held = self.held.take();
        match fate {
            FrameFate::Drop => {}
            FrameFate::Duplicate => {
                self.inner.send(frame)?;
                self.inner.send(frame)?;
            }
            FrameFate::Reorder if held.is_none() => {
                self.held = Some(frame.clone());
            }
            FrameFate::Delay => {
                std::thread::sleep(Duration::from_millis(self.cfg.delay_ms));
                self.inner.send(frame)?;
            }
            FrameFate::Deliver | FrameFate::Reorder => {
                self.inner.send(frame)?;
            }
        }
        if let Some(h) = held {
            self.inner.send(&h)?;
        }
        Ok(())
    }

    fn recv(&mut self, timeout: Duration) -> Result<Option<Frame>, NetError> {
        self.inner.recv(timeout)
    }

    fn peer(&self) -> &str {
        self.inner.peer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameKind;

    /// Records what actually hit the wire.
    #[derive(Default)]
    struct WireLog {
        frames: Vec<Frame>,
    }

    impl Transport for WireLog {
        fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
            self.frames.push(frame.clone());
            Ok(())
        }
        fn recv(&mut self, _timeout: Duration) -> Result<Option<Frame>, NetError> {
            Ok(None)
        }
        fn peer(&self) -> &str {
            "wirelog"
        }
    }

    fn data(i: u64) -> Frame {
        Frame::new(FrameKind::Data, i, vec![i as u8])
    }

    fn offsets(log: &WireLog) -> Vec<u64> {
        log.frames.iter().map(|f| f.offset).collect()
    }

    #[test]
    fn noop_config_passes_everything_through() {
        let mut t = LossyTransport::new(WireLog::default(), LossConfig::none(), 1, 0);
        for i in 0..20 {
            t.send(&data(i)).unwrap();
        }
        assert_eq!(offsets(&t.inner), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn fates_are_reproducible_for_same_seed_and_link() {
        let cfg = LossConfig { drop_prob: 0.2, dup_prob: 0.2, ..LossConfig::none() };
        let run = |seed, link| {
            let mut t = LossyTransport::new(WireLog::default(), cfg, seed, link);
            for i in 0..200 {
                t.send(&data(i)).unwrap();
            }
            offsets(&t.inner)
        };
        assert_eq!(run(7, 0), run(7, 0), "same stream must replay identically");
        assert_ne!(run(7, 0), run(7, 1), "links must fault independently");
        let delivered = run(7, 0);
        assert!(delivered.len() < 200, "some frames must drop at 20%");
        let uniq: std::collections::HashSet<_> = delivered.iter().collect();
        assert!(uniq.len() < delivered.len(), "some frames must duplicate at 20%");
    }

    #[test]
    fn reorder_swaps_adjacent_frames() {
        // Force reorder on every frame: odd frames hold, even release.
        let cfg = LossConfig { reorder_prob: 1.0, ..LossConfig::none() };
        let mut t = LossyTransport::new(WireLog::default(), cfg, 3, 0);
        for i in 0..4 {
            t.send(&data(i)).unwrap();
        }
        assert_eq!(offsets(&t.inner), vec![1, 0, 3, 2]);
    }

    #[test]
    fn forced_disconnect_trips_exactly_once() {
        let cfg = LossConfig { disconnect_after: Some(2), ..LossConfig::none() };
        let mut t = LossyTransport::new(WireLog::default(), cfg, 1, 0);
        t.send(&data(0)).unwrap();
        t.send(&data(1)).unwrap();
        let err = t.send(&data(2)).unwrap_err();
        assert!(err.to_string().contains("injected disconnect"), "got {err}");
        assert!(t.disconnect_tripped());
        // After the trip (as after a real reconnect) sends flow again.
        t.send(&data(3)).unwrap();
        assert_eq!(offsets(&t.inner), vec![0, 1, 3]);
    }
}
