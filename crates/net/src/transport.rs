//! The transport seam: frame-granular send/recv over real sockets.
//!
//! Everything above this module speaks [`Frame`]s; everything below is a
//! byte stream. [`StreamTransport`] adapts blocking TCP or unix-domain
//! streams (read timeouts make `recv` poll-friendly), and
//! [`NetListener`] accepts them without blocking the server's event
//! pump. The [`Transport`] trait is object-safe so the lossy fault
//! injector ([`crate::lossy::LossyTransport`]) can wrap any
//! implementation transparently.

use crate::frame::{Frame, FrameDecoder};
use crate::NetError;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::time::Duration;

/// A parsed endpoint: where to listen or connect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP address, e.g. `127.0.0.1:7070` (port 0 binds an ephemeral one).
    Tcp(String),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Uds(PathBuf),
}

impl Endpoint {
    /// Parse `tcp://host:port` or `uds:///path/to.sock`.
    pub fn parse(s: &str) -> Result<Endpoint, NetError> {
        if let Some(addr) = s.strip_prefix("tcp://") {
            if addr.is_empty() {
                return Err(NetError::BadEndpoint {
                    endpoint: s.into(),
                    detail: "empty tcp address".into(),
                });
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        if let Some(path) = s.strip_prefix("uds://") {
            #[cfg(unix)]
            {
                if path.is_empty() {
                    return Err(NetError::BadEndpoint {
                        endpoint: s.into(),
                        detail: "empty socket path".into(),
                    });
                }
                return Ok(Endpoint::Uds(PathBuf::from(path)));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(NetError::BadEndpoint {
                    endpoint: s.into(),
                    detail: "unix-domain sockets are not supported on this platform".into(),
                });
            }
        }
        Err(NetError::BadEndpoint {
            endpoint: s.into(),
            detail: "expected a tcp:// or uds:// scheme".into(),
        })
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Uds(path) => write!(f, "uds://{}", path.display()),
        }
    }
}

/// Object-safe frame pipe. `Send` so a boxed transport can live inside
/// the engine's [`seafl_core::CohortTrainer`].
pub trait Transport: Send {
    /// Write one frame, flushing it onto the wire.
    fn send(&mut self, frame: &Frame) -> Result<(), NetError>;

    /// Read the next frame, waiting at most `timeout`. `Ok(None)` means
    /// the wait elapsed with no complete frame — not an error.
    fn recv(&mut self, timeout: Duration) -> Result<Option<Frame>, NetError>;

    /// Human-readable peer label for error context.
    fn peer(&self) -> &str;
}

impl Transport for Box<dyn Transport> {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        (**self).send(frame)
    }
    fn recv(&mut self, timeout: Duration) -> Result<Option<Frame>, NetError> {
        (**self).recv(timeout)
    }
    fn peer(&self) -> &str {
        (**self).peer()
    }
}

enum StreamKind {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

/// A connected byte-stream transport (TCP or UDS) with an incremental
/// frame decoder on the read side.
pub struct StreamTransport {
    stream: StreamKind,
    decoder: FrameDecoder,
    peer: String,
}

impl StreamTransport {
    /// Connect to `ep` (one attempt; callers layer retry/backoff on top).
    pub fn connect(ep: &Endpoint) -> Result<StreamTransport, NetError> {
        let peer = ep.to_string();
        let stream = match ep {
            Endpoint::Tcp(addr) => {
                let s =
                    TcpStream::connect(addr).map_err(NetError::io(format!("connect {peer}")))?;
                s.set_nodelay(true).map_err(NetError::io(format!("set nodelay on {peer}")))?;
                StreamKind::Tcp(s)
            }
            #[cfg(unix)]
            Endpoint::Uds(path) => StreamKind::Uds(
                UnixStream::connect(path).map_err(NetError::io(format!("connect {peer}")))?,
            ),
        };
        Ok(StreamTransport { stream, decoder: FrameDecoder::new(), peer })
    }

    fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), NetError> {
        // A zero Duration means "no timeout" to the OS — clamp up instead.
        let t = Some(timeout.max(Duration::from_millis(1)));
        let res = match &self.stream {
            StreamKind::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            StreamKind::Uds(s) => s.set_read_timeout(t),
        };
        res.map_err(NetError::io(format!("set read timeout on {}", self.peer)))
    }

    fn read_some(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match &mut self.stream {
            StreamKind::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            StreamKind::Uds(s) => s.read(buf),
        }
    }

    fn write_all_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match &mut self.stream {
            StreamKind::Tcp(s) => s.write_all(bytes),
            #[cfg(unix)]
            StreamKind::Uds(s) => s.write_all(bytes),
        }
    }
}

impl Transport for StreamTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.write_all_bytes(&frame.encode())
            .map_err(NetError::io(format!("send to {}", self.peer)))
    }

    fn recv(&mut self, timeout: Duration) -> Result<Option<Frame>, NetError> {
        loop {
            if let Some(frame) = self
                .decoder
                .next_frame()
                .map_err(|source| NetError::Frame { peer: self.peer.clone(), source })?
            {
                return Ok(Some(frame));
            }
            self.set_read_timeout(timeout)?;
            let mut buf = [0u8; 16 * 1024];
            match self.read_some(&mut buf) {
                Ok(0) => return Err(NetError::Disconnected { peer: self.peer.clone() }),
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => {
                    return Err(NetError::Io {
                        context: format!("recv from {}", self.peer),
                        source: e,
                    })
                }
            }
        }
    }

    fn peer(&self) -> &str {
        &self.peer
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

/// A non-blocking listener the server polls between protocol work.
pub struct NetListener {
    kind: ListenerKind,
    local: Endpoint,
}

impl NetListener {
    /// Bind `ep`. For TCP with port 0 the returned listener's
    /// [`NetListener::local_endpoint`] carries the actual port; for UDS a
    /// stale socket file at the path is removed first.
    pub fn bind(ep: &Endpoint) -> Result<NetListener, NetError> {
        match ep {
            Endpoint::Tcp(addr) => {
                let l =
                    TcpListener::bind(addr).map_err(NetError::io(format!("bind tcp://{addr}")))?;
                l.set_nonblocking(true)
                    .map_err(NetError::io(format!("set nonblocking on tcp://{addr}")))?;
                let actual =
                    l.local_addr().map_err(NetError::io(format!("local addr of tcp://{addr}")))?;
                Ok(NetListener {
                    kind: ListenerKind::Tcp(l),
                    local: Endpoint::Tcp(actual.to_string()),
                })
            }
            #[cfg(unix)]
            Endpoint::Uds(path) => {
                if path.exists() {
                    std::fs::remove_file(path)
                        .map_err(NetError::io(format!("remove stale socket {}", path.display())))?;
                }
                let l = UnixListener::bind(path)
                    .map_err(NetError::io(format!("bind uds://{}", path.display())))?;
                l.set_nonblocking(true).map_err(NetError::io(format!(
                    "set nonblocking on uds://{}",
                    path.display()
                )))?;
                Ok(NetListener { kind: ListenerKind::Uds(l), local: ep.clone() })
            }
        }
    }

    /// The endpoint actually bound (resolves TCP port 0).
    pub fn local_endpoint(&self) -> &Endpoint {
        &self.local
    }

    /// Accept one pending connection, if any.
    pub fn accept(&self) -> Result<Option<StreamTransport>, NetError> {
        let accepted = match &self.kind {
            ListenerKind::Tcp(l) => match l.accept() {
                Ok((s, addr)) => {
                    s.set_nonblocking(false)
                        .map_err(NetError::io(format!("unset nonblocking for {addr}")))?;
                    s.set_nodelay(true).map_err(NetError::io(format!("set nodelay for {addr}")))?;
                    Some((StreamKind::Tcp(s), format!("tcp://{addr}")))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => {
                    return Err(NetError::Io {
                        context: format!("accept on {}", self.local),
                        source: e,
                    })
                }
            },
            #[cfg(unix)]
            ListenerKind::Uds(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false).map_err(NetError::io(format!(
                        "unset nonblocking for peer of {}",
                        self.local
                    )))?;
                    Some((StreamKind::Uds(s), format!("{}#peer", self.local)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => {
                    return Err(NetError::Io {
                        context: format!("accept on {}", self.local),
                        source: e,
                    })
                }
            },
        };
        Ok(accepted.map(|(stream, peer)| StreamTransport {
            stream,
            decoder: FrameDecoder::new(),
            peer,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameKind;

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:7070").unwrap(),
            Endpoint::Tcp("127.0.0.1:7070".into())
        );
        assert!(Endpoint::parse("http://x").is_err());
        assert!(Endpoint::parse("tcp://").is_err());
        #[cfg(unix)]
        {
            let ep = Endpoint::parse("uds:///tmp/seafl.sock").unwrap();
            assert_eq!(ep, Endpoint::Uds(PathBuf::from("/tmp/seafl.sock")));
            assert_eq!(ep.to_string(), "uds:///tmp/seafl.sock");
            assert!(Endpoint::parse("uds://").is_err());
        }
    }

    #[test]
    fn tcp_loopback_send_recv_and_timeout() {
        let listener = NetListener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
        let ep = listener.local_endpoint().clone();
        let mut client = StreamTransport::connect(&ep).unwrap();
        let mut server = loop {
            if let Some(t) = listener.accept().unwrap() {
                break t;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        let frame = Frame::new(FrameKind::Data, 9, vec![1, 2, 3]);
        client.send(&frame).unwrap();
        let got = loop {
            if let Some(f) = server.recv(Duration::from_millis(200)).unwrap() {
                break f;
            }
        };
        assert_eq!(got, frame);
        // Nothing else queued: recv times out cleanly.
        assert_eq!(server.recv(Duration::from_millis(10)).unwrap(), None);
    }

    #[cfg(unix)]
    #[test]
    fn uds_loopback_send_recv() {
        let dir = std::env::temp_dir().join(format!("seafl-net-uds-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sock");
        let ep = Endpoint::Uds(path.clone());
        let listener = NetListener::bind(&ep).unwrap();
        let mut client = StreamTransport::connect(&ep).unwrap();
        let mut server = loop {
            if let Some(t) = listener.accept().unwrap() {
                break t;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        let frame = Frame::new(FrameKind::Ack, 4, Vec::new());
        server.send(&frame).unwrap();
        let got = loop {
            if let Some(f) = client.recv(Duration::from_millis(200)).unwrap() {
                break f;
            }
        };
        assert_eq!(got, frame);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
