//! `seafl-server`: run the shared loopback experiment with training
//! farmed out to `seafl-client` worker processes over the wire protocol.
//!
//! ```text
//! seafl-server --listen tcp://127.0.0.1:0 --workers 4 --seed 11 \
//!     --algorithm seafl --addr-file /tmp/seafl.addr \
//!     --report-file /tmp/seafl.report
//! ```
//!
//! The experiment itself is the fixed preset from
//! [`seafl_net::preset::loopback_config`]; only transport knobs are
//! configurable, so server, workers and any in-process reference run
//! agree on the science by construction. The report file is plain
//! `key=value` lines (model/trace digests, rounds, wire counters) for
//! scripts and CI to diff against a simulated run.

use seafl_core::engine::event_loop::run_loop;
use seafl_core::engine::setup::Environment;
use seafl_core::{build_policy, ExperimentConfig};
use seafl_net::preset;
use seafl_net::server::{NetServer, NetStats};
use seafl_net::transport::Endpoint;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Args {
    listen: String,
    workers: usize,
    seed: u64,
    algorithm: String,
    codec: String,
    addr_file: Option<String>,
    report_file: Option<String>,
    chunk_bytes: Option<usize>,
    replay_history: Option<usize>,
    idle_timeout: Option<f64>,
    rto_base: Option<f64>,
    loss_drop: Option<f64>,
    loss_dup: Option<f64>,
    loss_reorder: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: seafl-server --listen <tcp://host:port|uds://path> [--workers N] \
         [--seed N] [--algorithm NAME] [--codec LABEL] [--addr-file PATH] [--report-file PATH] \
         [--chunk-bytes N] [--replay-history N] [--idle-timeout SECS] [--rto-base SECS] \
         [--loss-drop P] [--loss-dup P] [--loss-reorder P]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "tcp://127.0.0.1:0".into(),
        workers: 1,
        seed: 11,
        algorithm: "seafl".into(),
        codec: "identity".into(),
        addr_file: None,
        report_file: None,
        chunk_bytes: None,
        replay_history: None,
        idle_timeout: None,
        rto_base: None,
        loss_drop: None,
        loss_dup: None,
        loss_reorder: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--listen" => args.listen = val(),
            "--workers" => args.workers = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--algorithm" => args.algorithm = val(),
            "--codec" => args.codec = val(),
            "--addr-file" => args.addr_file = Some(val()),
            "--report-file" => args.report_file = Some(val()),
            "--chunk-bytes" => args.chunk_bytes = Some(val().parse().unwrap_or_else(|_| usage())),
            "--replay-history" => {
                args.replay_history = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--idle-timeout" => args.idle_timeout = Some(val().parse().unwrap_or_else(|_| usage())),
            "--rto-base" => args.rto_base = Some(val().parse().unwrap_or_else(|_| usage())),
            "--loss-drop" => args.loss_drop = Some(val().parse().unwrap_or_else(|_| usage())),
            "--loss-dup" => args.loss_dup = Some(val().parse().unwrap_or_else(|_| usage())),
            "--loss-reorder" => args.loss_reorder = Some(val().parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    args
}

fn build_config(args: &Args) -> ExperimentConfig {
    let mut cfg = preset::loopback_config(args.seed, &args.algorithm);
    cfg.codec = preset::codec_by_name(&args.codec).unwrap_or_else(|e| {
        eprintln!("seafl-server: {e}");
        std::process::exit(2);
    });
    cfg.transport.listen = Some(args.listen.clone());
    if let Some(v) = args.chunk_bytes {
        cfg.transport.chunk_bytes = v;
    }
    if let Some(v) = args.replay_history {
        cfg.transport.replay_history = v;
    }
    if let Some(v) = args.idle_timeout {
        cfg.transport.idle_timeout = v;
    }
    if let Some(v) = args.rto_base {
        cfg.transport.rto_base = v;
    }
    if let Some(v) = args.loss_drop {
        cfg.transport.loss.drop_prob = v;
    }
    if let Some(v) = args.loss_dup {
        cfg.transport.loss.dup_prob = v;
    }
    if let Some(v) = args.loss_reorder {
        cfg.transport.loss.reorder_prob = v;
    }
    cfg.validate();
    cfg
}

/// Write `path` atomically (tmp + rename) so a polling reader never sees
/// a half-written file.
fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn main() {
    let args = parse_args();
    let cfg = build_config(&args);
    let ep = Endpoint::parse(&args.listen).unwrap_or_else(|e| {
        eprintln!("seafl-server: {e}");
        std::process::exit(2);
    });
    let stats = Arc::new(Mutex::new(NetStats::default()));
    let mut server = NetServer::bind(&ep, &cfg, stats.clone()).unwrap_or_else(|e| {
        eprintln!("seafl-server: {e}");
        std::process::exit(1);
    });
    let actual = server.local_endpoint().to_string();
    eprintln!("seafl-server: listening on {actual}, waiting for {} workers", args.workers);
    if let Some(path) = &args.addr_file {
        if let Err(e) = write_atomic(path, &actual) {
            eprintln!("seafl-server: cannot write addr file {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = server.wait_for_workers(args.workers, Duration::from_secs(120)) {
        eprintln!("seafl-server: {e}");
        std::process::exit(1);
    }
    eprintln!("seafl-server: {} workers connected, starting run", args.workers);

    let mut env = Environment::build(&cfg);
    env.trainer = Some(Box::new(server));
    let mut result = run_loop(&cfg, &mut env, build_policy(&cfg));
    if let Some(trainer) = env.trainer.as_mut() {
        trainer.shutdown();
    }

    // Replace the engine's modeled traffic counters with measured wire
    // truth (retransmits and handshakes included).
    let s = *stats.lock().unwrap();
    let counters = &mut result.obs.counters;
    counters.insert("net_bytes_sent".into(), s.bytes_sent);
    counters.insert("net_bytes_received".into(), s.bytes_received);
    counters.insert("net_retransmits".into(), s.retransmits);
    counters.insert("net_reconnects".into(), s.reconnects);
    counters.insert("net_workers_quarantined".into(), s.workers_quarantined);

    let report = format!(
        "algorithm={}\ncodec={}\nmodel_digest={:016x}\ntrace_digest={:016x}\nrounds={}\n\
         total_updates={}\ncodec_bytes_raw={}\ncodec_bytes_encoded={}\nnet_bytes_sent={}\n\
         net_bytes_received={}\nnet_retransmits={}\n\
         net_reconnects={}\nnet_workers_quarantined={}\n",
        result.algorithm,
        cfg.codec.label(),
        result.model_digest,
        result.trace.digest(),
        result.rounds,
        result.total_updates,
        result.codec_bytes_raw,
        result.codec_bytes_encoded,
        s.bytes_sent,
        s.bytes_received,
        s.retransmits,
        s.reconnects,
        s.workers_quarantined,
    );
    if let Some(path) = &args.report_file {
        if let Err(e) = write_atomic(path, &report) {
            eprintln!("seafl-server: cannot write report file {path}: {e}");
            std::process::exit(1);
        }
    }
    print!("{report}");
}
