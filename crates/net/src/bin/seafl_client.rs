//! `seafl-client`: one worker process for a `seafl-server` run.
//!
//! ```text
//! seafl-client --addr-file /tmp/seafl.addr --seed 11 --algorithm seafl \
//!     --link 0 --loss-drop 0.05 --disconnect-after 40
//! ```
//!
//! `--seed`/`--algorithm`/`--codec` must match the server's — the handshake
//! verifies it via the config state-hash, so a mismatched worker is
//! rejected instead of silently corrupting the run. `--link` gives each
//! worker its own deterministic loss stream; `--disconnect-after N`
//! forcibly fails the link after N sent frames (once), and
//! `--die-after-assigns N` makes the process exit silently on its Nth
//! assignment — the two fault hooks the loopback resilience tests drive.

use seafl_net::preset;
use seafl_net::NetClient;
use std::time::{Duration, Instant};

struct Args {
    connect: Option<String>,
    addr_file: Option<String>,
    seed: u64,
    algorithm: String,
    codec: String,
    link: u64,
    chunk_bytes: Option<usize>,
    replay_history: Option<usize>,
    rto_base: Option<f64>,
    loss_drop: Option<f64>,
    loss_dup: Option<f64>,
    loss_reorder: Option<f64>,
    loss_delay: Option<f64>,
    delay_ms: Option<u64>,
    disconnect_after: Option<u64>,
    die_after_assigns: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: seafl-client (--connect <tcp://host:port|uds://path> | --addr-file PATH) \
         [--seed N] [--algorithm NAME] [--codec LABEL] [--link N] [--chunk-bytes N] [--replay-history N] \
         [--rto-base SECS] [--loss-drop P] [--loss-dup P] [--loss-reorder P] [--loss-delay P] \
         [--delay-ms MS] [--disconnect-after N] [--die-after-assigns N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: None,
        addr_file: None,
        seed: 11,
        algorithm: "seafl".into(),
        codec: "identity".into(),
        link: 0,
        chunk_bytes: None,
        replay_history: None,
        rto_base: None,
        loss_drop: None,
        loss_dup: None,
        loss_reorder: None,
        loss_delay: None,
        delay_ms: None,
        disconnect_after: None,
        die_after_assigns: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--connect" => args.connect = Some(val()),
            "--addr-file" => args.addr_file = Some(val()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--algorithm" => args.algorithm = val(),
            "--codec" => args.codec = val(),
            "--link" => args.link = val().parse().unwrap_or_else(|_| usage()),
            "--chunk-bytes" => args.chunk_bytes = Some(val().parse().unwrap_or_else(|_| usage())),
            "--replay-history" => {
                args.replay_history = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--rto-base" => args.rto_base = Some(val().parse().unwrap_or_else(|_| usage())),
            "--loss-drop" => args.loss_drop = Some(val().parse().unwrap_or_else(|_| usage())),
            "--loss-dup" => args.loss_dup = Some(val().parse().unwrap_or_else(|_| usage())),
            "--loss-reorder" => args.loss_reorder = Some(val().parse().unwrap_or_else(|_| usage())),
            "--loss-delay" => args.loss_delay = Some(val().parse().unwrap_or_else(|_| usage())),
            "--delay-ms" => args.delay_ms = Some(val().parse().unwrap_or_else(|_| usage())),
            "--disconnect-after" => {
                args.disconnect_after = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--die-after-assigns" => {
                args.die_after_assigns = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    if args.connect.is_none() && args.addr_file.is_none() {
        usage();
    }
    args
}

/// Poll the server's addr file into existence (it is written atomically).
fn resolve_endpoint(args: &Args) -> String {
    if let Some(ep) = &args.connect {
        return ep.clone();
    }
    let path = args.addr_file.as_ref().expect("checked in parse_args");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match std::fs::read_to_string(path) {
            Ok(s) if !s.trim().is_empty() => return s.trim().to_string(),
            _ if Instant::now() >= deadline => {
                eprintln!("seafl-client: addr file {path} never appeared");
                std::process::exit(1);
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn main() {
    let args = parse_args();
    let endpoint = resolve_endpoint(&args);
    let mut cfg = preset::loopback_config(args.seed, &args.algorithm);
    cfg.codec = preset::codec_by_name(&args.codec).unwrap_or_else(|e| {
        eprintln!("seafl-client[{}]: {e}", args.link);
        std::process::exit(2);
    });
    cfg.transport.connect = Some(endpoint);
    if let Some(v) = args.chunk_bytes {
        cfg.transport.chunk_bytes = v;
    }
    if let Some(v) = args.replay_history {
        cfg.transport.replay_history = v;
    }
    if let Some(v) = args.rto_base {
        cfg.transport.rto_base = v;
    }
    if let Some(v) = args.loss_drop {
        cfg.transport.loss.drop_prob = v;
    }
    if let Some(v) = args.loss_dup {
        cfg.transport.loss.dup_prob = v;
    }
    if let Some(v) = args.loss_reorder {
        cfg.transport.loss.reorder_prob = v;
    }
    if let Some(v) = args.loss_delay {
        cfg.transport.loss.delay_prob = v;
    }
    if let Some(v) = args.delay_ms {
        cfg.transport.loss.delay_ms = v;
    }
    cfg.transport.loss.disconnect_after = args.disconnect_after;
    cfg.validate();

    let mut client = NetClient::new(cfg, args.link, args.die_after_assigns).unwrap_or_else(|e| {
        eprintln!("seafl-client[{}]: {e}", args.link);
        std::process::exit(1);
    });
    match client.run() {
        Ok(()) => eprintln!("seafl-client[{}]: done", args.link),
        Err(e) => {
            eprintln!("seafl-client[{}]: {e}", args.link);
            std::process::exit(1);
        }
    }
}
