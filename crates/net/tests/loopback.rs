//! End-to-end loopback resilience: real server + client processes over
//! real sockets must reproduce the in-process simulator's run **bit for
//! bit**, under injected packet loss, a forced mid-transfer disconnect,
//! and a worker that dies outright.
//!
//! These tests spawn the actual `seafl-server`/`seafl-client` binaries
//! (cargo provides their paths via `CARGO_BIN_EXE_*`), so they cover the
//! full stack: argument parsing, handshake, chunked transfers, the
//! sequenced link's replay, RTO retransmits, quarantine and the report
//! file format that CI diffs.

use seafl_core::run_experiment;
use seafl_net::preset::loopback_config;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SERVER: &str = env!("CARGO_BIN_EXE_seafl-server");
const CLIENT: &str = env!("CARGO_BIN_EXE_seafl-client");

fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seafl-loopback-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn(bin: &str, args: &[String]) -> Child {
    Command::new(bin)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"))
}

fn wait_timeout(mut child: Child, what: &str, secs: u64) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("{what} did not finish within {secs}s");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn read_report(path: &Path) -> HashMap<String, String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("report {} unreadable: {e}", path.display()));
    text.lines()
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn report_u64(report: &HashMap<String, String>, key: &str) -> u64 {
    report
        .get(key)
        .unwrap_or_else(|| panic!("report missing {key}: {report:?}"))
        .parse()
        .unwrap_or_else(|e| panic!("report {key} not a number: {e}"))
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Four TCP workers under seeded drop/duplicate/reorder loss on both
/// directions, plus one forced mid-transfer disconnect: the run must
/// complete with the simulator's exact model digest, at least one resume,
/// and at least one server-side retransmit. Duplicate deliveries must not
/// inflate admission: rounds and accepted updates match the simulator
/// exactly (the engine's counters never see the wire chaos).
#[test]
fn tcp_lossy_fleet_matches_simulator_digest() {
    let seed = 11;
    let sim = run_experiment(&loopback_config(seed, "seafl"));
    let dir = scratch_dir("tcp");
    let addr = dir.join("server.addr");
    let report_path = dir.join("server.report");

    let server = spawn(
        SERVER,
        &args(&[
            "--listen",
            "tcp://127.0.0.1:0",
            "--workers",
            "4",
            "--seed",
            "11",
            "--algorithm",
            "seafl",
            "--chunk-bytes",
            "8192",
            "--addr-file",
            addr.to_str().unwrap(),
            "--report-file",
            report_path.to_str().unwrap(),
            // Server-side loss makes model chunks drop, which only the
            // RTO retransmit path can repair — so retransmits > 0 is a
            // structural guarantee, not a timing accident.
            "--loss-drop",
            "0.04",
            "--loss-dup",
            "0.04",
            "--loss-reorder",
            "0.04",
        ]),
    );
    let mut clients = Vec::new();
    for link in 0..4 {
        let mut cl = args(&[
            "--addr-file",
            addr.to_str().unwrap(),
            "--seed",
            "11",
            "--algorithm",
            "seafl",
            "--chunk-bytes",
            "8192",
            "--loss-drop",
            "0.08",
            "--loss-dup",
            "0.05",
            "--loss-reorder",
            "0.05",
        ]);
        cl.push("--link".into());
        cl.push(link.to_string());
        if link == 2 {
            // Hard-kill this worker's connection partway through a
            // transfer; it must resume via replay, not restart.
            cl.push("--disconnect-after".into());
            cl.push("30".into());
        }
        clients.push(spawn(CLIENT, &cl));
    }
    for (i, c) in clients.into_iter().enumerate() {
        let status = wait_timeout(c, &format!("client {i}"), 300);
        assert!(status.success(), "client {i} exited with {status}");
    }
    let status = wait_timeout(server, "server", 300);
    assert!(status.success(), "server exited with {status}");

    let report = read_report(&report_path);
    assert_eq!(
        report["model_digest"],
        format!("{:016x}", sim.model_digest),
        "wire run must end on the simulator's exact model bits"
    );
    assert_eq!(report_u64(&report, "rounds"), sim.rounds);
    assert_eq!(report_u64(&report, "total_updates"), sim.total_updates as u64);
    assert!(report_u64(&report, "net_reconnects") >= 1, "forced disconnect must resume");
    assert!(report_u64(&report, "net_retransmits") >= 1, "loss must force retransmits");
    assert!(report_u64(&report, "net_bytes_sent") > 0);
    assert!(report_u64(&report, "net_bytes_received") > 0);
    assert_eq!(report_u64(&report, "net_workers_quarantined"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two workers over a unix-domain socket with a clean link: both digests
/// (model *and* trace) must match the simulator — no reconnect/quarantine
/// events means even the event trace is bit-identical.
#[cfg(unix)]
#[test]
fn uds_clean_fleet_matches_simulator_trace() {
    let seed = 23;
    let sim = run_experiment(&loopback_config(seed, "fedbuff"));
    let dir = scratch_dir("uds");
    let sock = dir.join("server.sock");
    let listen = format!("uds://{}", sock.display());
    let report_path = dir.join("server.report");

    let server = spawn(
        SERVER,
        &args(&[
            "--listen",
            &listen,
            "--workers",
            "2",
            "--seed",
            "23",
            "--algorithm",
            "fedbuff",
            "--report-file",
            report_path.to_str().unwrap(),
        ]),
    );
    let mut clients = Vec::new();
    for link in 0..2 {
        let mut cl = args(&["--connect", &listen, "--seed", "23", "--algorithm", "fedbuff"]);
        cl.push("--link".into());
        cl.push(link.to_string());
        clients.push(spawn(CLIENT, &cl));
    }
    for (i, c) in clients.into_iter().enumerate() {
        let status = wait_timeout(c, &format!("client {i}"), 300);
        assert!(status.success(), "client {i} exited with {status}");
    }
    let status = wait_timeout(server, "server", 300);
    assert!(status.success(), "server exited with {status}");

    let report = read_report(&report_path);
    assert_eq!(report["model_digest"], format!("{:016x}", sim.model_digest));
    assert_eq!(
        report["trace_digest"],
        format!("{:016x}", sim.trace.digest()),
        "a clean wire run must replay the simulator's exact event trace"
    );
    assert_eq!(report_u64(&report, "net_reconnects"), 0);
    assert_eq!(report_u64(&report, "net_workers_quarantined"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two TCP workers with the top-k codec armed, under mild seeded loss:
/// compressed update blobs cross the socket, yet the run must end on the
/// in-process engine's exact model digest for the same codec config —
/// client-side wire encoding and the engine's local-slot projection are
/// the same single application of the codec. The report's byte counters
/// must show real compression (encoded < raw).
#[test]
fn tcp_lossy_codec_fleet_matches_in_process_digest() {
    let seed = 41;
    let mut cfg = loopback_config(seed, "seafl");
    cfg.codec = seafl_net::preset::codec_by_name("topk").unwrap();
    let sim = run_experiment(&cfg);
    assert!(
        sim.codec_bytes_encoded < sim.codec_bytes_raw,
        "top-k must compress in-process too ({} vs {})",
        sim.codec_bytes_encoded,
        sim.codec_bytes_raw
    );
    let dir = scratch_dir("codec");
    let addr = dir.join("server.addr");
    let report_path = dir.join("server.report");

    let server = spawn(
        SERVER,
        &args(&[
            "--listen",
            "tcp://127.0.0.1:0",
            "--workers",
            "2",
            "--seed",
            "41",
            "--algorithm",
            "seafl",
            "--codec",
            "topk",
            "--addr-file",
            addr.to_str().unwrap(),
            "--report-file",
            report_path.to_str().unwrap(),
            "--loss-drop",
            "0.03",
            "--loss-dup",
            "0.03",
        ]),
    );
    let mut clients = Vec::new();
    for link in 0..2 {
        let mut cl = args(&[
            "--addr-file",
            addr.to_str().unwrap(),
            "--seed",
            "41",
            "--algorithm",
            "seafl",
            "--codec",
            "topk",
            "--loss-drop",
            "0.05",
        ]);
        cl.push("--link".into());
        cl.push(link.to_string());
        clients.push(spawn(CLIENT, &cl));
    }
    for (i, c) in clients.into_iter().enumerate() {
        let status = wait_timeout(c, &format!("client {i}"), 300);
        assert!(status.success(), "client {i} exited with {status}");
    }
    let status = wait_timeout(server, "server", 300);
    assert!(status.success(), "server exited with {status}");

    let report = read_report(&report_path);
    assert_eq!(report["codec"], "topk");
    assert_eq!(
        report["model_digest"],
        format!("{:016x}", sim.model_digest),
        "coded wire run must end on the in-process engine's exact model bits"
    );
    assert_eq!(report_u64(&report, "rounds"), sim.rounds);
    assert_eq!(report_u64(&report, "codec_bytes_raw"), sim.codec_bytes_raw);
    assert_eq!(report_u64(&report, "codec_bytes_encoded"), sim.codec_bytes_encoded);
    assert!(
        report_u64(&report, "codec_bytes_encoded") < report_u64(&report, "codec_bytes_raw"),
        "compressed bytes must actually be smaller on the wire"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker that accepts an assignment and then dies without replying:
/// the idle timeout must quarantine it, its jobs must fail over (to the
/// surviving worker or the server's local pool), and the run must still
/// finish on the simulator's exact model digest.
#[test]
fn dead_worker_quarantined_and_run_completes() {
    let seed = 37;
    let sim = run_experiment(&loopback_config(seed, "seafl"));
    let dir = scratch_dir("quarantine");
    let addr = dir.join("server.addr");
    let report_path = dir.join("server.report");

    let server = spawn(
        SERVER,
        &args(&[
            "--listen",
            "tcp://127.0.0.1:0",
            "--workers",
            "2",
            "--seed",
            "37",
            "--algorithm",
            "seafl",
            "--idle-timeout",
            "3",
            "--addr-file",
            addr.to_str().unwrap(),
            "--report-file",
            report_path.to_str().unwrap(),
        ]),
    );
    let healthy = spawn(
        CLIENT,
        &args(&[
            "--addr-file",
            addr.to_str().unwrap(),
            "--seed",
            "37",
            "--algorithm",
            "seafl",
            "--link",
            "0",
        ]),
    );
    let doomed = spawn(
        CLIENT,
        &args(&[
            "--addr-file",
            addr.to_str().unwrap(),
            "--seed",
            "37",
            "--algorithm",
            "seafl",
            "--link",
            "1",
            "--die-after-assigns",
            "1",
        ]),
    );
    let status = wait_timeout(doomed, "doomed client", 300);
    assert!(status.success(), "doomed client exited with {status}");
    let status = wait_timeout(healthy, "healthy client", 300);
    assert!(status.success(), "healthy client exited with {status}");
    let status = wait_timeout(server, "server", 300);
    assert!(status.success(), "server exited with {status}");

    let report = read_report(&report_path);
    assert_eq!(
        report["model_digest"],
        format!("{:016x}", sim.model_digest),
        "failover must preserve the exact result"
    );
    assert_eq!(report_u64(&report, "rounds"), sim.rounds);
    assert!(report_u64(&report, "net_workers_quarantined") >= 1, "dead worker must be quarantined");
    let _ = std::fs::remove_dir_all(&dir);
}
