//! Compile-check harness for the Rust code blocks in `README.md` and
//! `OBSERVABILITY.md`.
//!
//! Every ```` ```rust ```` block in those two documents is mirrored
//! verbatim into one function body below. `tests/doc_snippets_sync.rs`
//! fails if a block and its mirror drift apart, and CI compiles this
//! example, so a documented API that stops existing breaks the build
//! instead of rotting in prose. The snippet functions are deliberately
//! never called — running them would train real models — so `main` only
//! points back at the sources.

#![allow(dead_code)]

// ----- README.md -----

fn readme_quickstart() {
    use seafl::core::{run_experiment, Algorithm, ExperimentConfig};

    // 40 heterogeneous devices, SEAFL server: buffer K = 5, staleness limit 10.
    let config = ExperimentConfig::quick(1, Algorithm::seafl(10, 5, Some(10)));
    let result = run_experiment(&config);
    println!("time to 80%: {:?} simulated seconds", result.time_to_accuracy(0.80));

    // Observability is on (summary level) by default: the run carries its
    // metric registry home in `result.obs`.
    let stale = &result.obs.histograms["staleness_rounds"];
    println!("aggregations: {}, staleness p50/p95: {:.1}/{:.1} rounds",
             result.obs.counters["aggregations"], stale.p50, stale.p95);
}

fn readme_and_observability_jsonl_stream() {
    use seafl::core::{run_experiment, Algorithm, ExperimentConfig, ObsConfig};

    let mut config = ExperimentConfig::quick(1, Algorithm::seafl(10, 5, Some(10)));
    config.obs = ObsConfig::full("target/experiments/quickstart.jsonl");
    let result = run_experiment(&config);
    assert_eq!(result.obs.counters["aggregations"], result.rounds);
}

fn readme_fault_overlay() {
    use seafl::core::{run_experiment, Algorithm, ExperimentConfig};

    let mut config = ExperimentConfig::quick(1, Algorithm::seafl(10, 5, Some(10)));
    config.faults.crash_prob = 0.15;             // ~15% of devices die mid-run...
    config.faults.crash_window = (0.0, 1_000.0); // ...somewhere in the first 1000 s
    config.faults.upload_drop_prob = 0.10;       // 10% of uploads lost in transit
    config.resilience.session_timeout = Some(300.0); // server reclaims dead sessions
    let result = run_experiment(&config);
    println!("{:?}: {} crashes, {} timeouts, {} updates rejected",
             result.termination, result.crashes, result.timeouts, result.rejected_updates);
}

fn readme_attack_overlay() {
    use seafl::core::robust::RobustAggregator;
    use seafl::core::{run_experiment, Algorithm, ExperimentConfig};
    use seafl::sim::AttackKind;

    let mut config = ExperimentConfig::quick(1, Algorithm::fedbuff(10, 5));
    config.attack.attacker_prob = 0.3;   // ~30% of devices are adversarial...
    config.attack.kinds = vec![AttackKind::SignFlip, AttackKind::Collude];
    config.robust.rule = RobustAggregator::CoordMedian; // ...the median shrugs them off
    let result = run_experiment(&config);
    let d = result.detection();
    println!("{} attackers tampered {} uploads; screened {} clients (recall {:.2})",
             result.attackers.len(), result.attacked_updates,
             result.screened_clients.len(), d.recall);
}

fn readme_codec_bytes_to_accuracy() {
    use seafl::core::{run_experiment, Algorithm, CodecConfig, CodecStage, ExperimentConfig};

    let mut config = ExperimentConfig::quick(1, Algorithm::seafl(10, 5, Some(10)));
    config.codec = CodecConfig {
        stages: vec![CodecStage::TopK { k: 2048 }], // keep the 2048 largest movers per update
        error_feedback: true,                       // accumulate + re-send what top-k dropped
    };
    let result = run_experiment(&config);
    let ratio = result.codec_bytes_encoded as f64 / result.codec_bytes_raw as f64;
    println!("upload bytes to 70% accuracy: {:?} (compression ratio {:.3})",
             result.bytes_to_accuracy(0.70), ratio);
}

// ----- OBSERVABILITY.md -----

fn observability_modes() {
    use seafl::core::{ObsConfig, ObsMode};

    let summary = ObsConfig::default(); // in-memory registry + phase table (the default)
    assert_eq!(summary.mode, ObsMode::Summary);
    let off = ObsConfig::off();         // hooks reduce to a branch; no clock reads
    assert!(off.jsonl_path.is_none());
    let full = ObsConfig::full("target/run.jsonl"); // summary + one JSONL record per event
    assert_eq!(full.mode, ObsMode::Full);
}

fn observability_registry() {
    use seafl::core::obs::{bounds, names, MetricsRegistry};

    let mut reg = MetricsRegistry::new();
    reg.inc(names::UPDATES_RECEIVED);
    reg.observe(names::STALENESS_ROUNDS, bounds::STALENESS_ROUNDS, 2.0);
    assert_eq!(reg.counter(names::UPDATES_RECEIVED), 1);
    // Same recording sequence ⇒ same digest, bit for bit.
    assert_eq!(reg.digest(), reg.clone().digest());
}

fn main() {
    println!("compile-only mirror of the README.md / OBSERVABILITY.md Rust code blocks;");
    println!("tests/doc_snippets_sync.rs keeps the mirrors honest.");
}
