//! Dump a compact fingerprint of a few deterministic runs (used to check
//! bit-identical behaviour across refactors; see tests/chaos.rs).
//!
//! ```sh
//! cargo run --release --example golden_capture
//! ```

use seafl::core::{run_experiment, Algorithm, ExperimentConfig};
use seafl::nn::ModelKind;
use seafl::sim::FleetConfig;

fn cfg(seed: u64, algorithm: Algorithm) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, algorithm);
    c.num_clients = 10;
    c.fleet = FleetConfig::pareto_fleet(10);
    c.train_per_class = 24;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    c.max_rounds = 12;
    c.stop_at_accuracy = None;
    c
}

fn main() {
    for alg in [
        Algorithm::seafl(5, 3, Some(5)),
        Algorithm::seafl2(5, 3, 2),
        Algorithm::fedbuff(5, 3),
        Algorithm::fedasync(5),
        Algorithm::FedAvg { clients_per_round: 4 },
    ] {
        let r = run_experiment(&cfg(77, alg));
        println!(
            "{}: rounds={} updates={} partial={} sim_end={:.6}",
            r.algorithm, r.rounds, r.total_updates, r.partial_updates, r.sim_time_end
        );
        let pts: Vec<String> =
            r.accuracy.iter().map(|(t, a)| format!("({t:.6},{a:.12})")).collect();
        println!("  acc=[{}]", pts.join(", "));
    }
}
