//! The paper's motivating scenario: a fleet with a heavy straggler tail.
//! Compares SEAFL, FedBuff and synchronous FedAvg on the *same* data,
//! models and device speeds, differing only in the server protocol.
//!
//! ```sh
//! cargo run --release --example heterogeneous_fleet
//! ```

use seafl::core::{run_experiment, Algorithm, ExperimentConfig};
use seafl::data::sampling::ParetoSpeed;
use seafl::sim::FleetConfig;

fn main() {
    // An extra-heavy straggler tail: the slowest devices are up to 40×
    // slower than the fastest tier (the regime where synchronous FL wastes
    // the fleet, §I of the paper).
    let fleet = FleetConfig {
        pareto_speed: Some(ParetoSpeed { shape: 1.2, scale: 1.0, cap: 40.0 }),
        ..FleetConfig::pareto_fleet(40)
    };

    let arms = [
        ("SEAFL (beta=10)", Algorithm::seafl(10, 5, Some(10))),
        ("FedBuff", Algorithm::fedbuff(10, 5)),
        ("FedAvg (sync)", Algorithm::FedAvg { clients_per_round: 10 }),
    ];

    println!("{:<18} {:>12} {:>12} {:>10}", "protocol", "t->70% (s)", "t->80% (s)", "rounds");
    println!("{}", "-".repeat(56));
    for (name, algorithm) in arms {
        let mut config = ExperimentConfig::quick(7, algorithm);
        config.fleet = fleet.clone();
        config.max_rounds = 200;
        config.stop_at_accuracy = Some(0.82);
        let r = run_experiment(&config);
        let fmt = |t: Option<f64>| t.map_or("—".into(), |v| format!("{v:.0}"));
        println!(
            "{name:<18} {:>12} {:>12} {:>10}",
            fmt(r.time_to_accuracy(0.70)),
            fmt(r.time_to_accuracy(0.80)),
            r.rounds
        );
    }
    println!("\nSEAFL reaches the targets fastest: it neither waits for the");
    println!("stragglers (FedAvg) nor lets their stale updates drag the");
    println!("average (FedBuff's uniform 1/K weighting).");
}
