//! SEAFL² partial training in action: a tight staleness limit makes the
//! server notify slow devices, which upload at the end of their current
//! epoch instead of finishing all E epochs. This example inspects the event
//! trace to show the notifications and partial uploads.
//!
//! ```sh
//! cargo run --release --example partial_training
//! ```

use seafl::core::{run_experiment, Algorithm, ExperimentConfig};
use seafl::data::sampling::ParetoSpeed;
use seafl::sim::{FleetConfig, TraceEvent};

fn main() {
    // Extreme heterogeneity + tight staleness limit β = 2: plenty of
    // notifications.
    let mut config = ExperimentConfig::quick(3, Algorithm::seafl2(10, 5, 2));
    config.fleet = FleetConfig {
        pareto_speed: Some(ParetoSpeed { shape: 1.1, scale: 1.0, cap: 50.0 }),
        ..FleetConfig::pareto_fleet(config.num_clients)
    };
    config.max_rounds = 60;

    let result = run_experiment(&config);

    println!("SEAFL^2 run: {} rounds, {} updates total", result.rounds, result.total_updates);
    println!(
        "notifications sent: {}, partial updates: {} ({:.0}% of all updates)\n",
        result.notifications,
        result.partial_updates,
        100.0 * result.partial_updates as f64 / result.total_updates as f64
    );

    println!("first notification/partial-upload episodes in the trace:");
    let mut shown = 0;
    for (t, ev) in result.trace.entries() {
        match ev {
            TraceEvent::Notify { id } => {
                println!("  {t:>8}  server notifies device {id} (over staleness limit)");
                shown += 1;
            }
            TraceEvent::Upload { id, epochs, .. } if *epochs < config.local_epochs => {
                println!(
                    "  {t:>8}  device {id} uploads PARTIAL update after {epochs}/{} epochs",
                    config.local_epochs
                );
                shown += 1;
            }
            _ => {}
        }
        if shown >= 12 {
            break;
        }
    }

    println!("\ntime to 80% accuracy: {:?} simulated seconds", result.time_to_accuracy(0.80));
}
