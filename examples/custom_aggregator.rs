//! Plugging a user-defined aggregation rule into the semi-asynchronous
//! engine. This implements the dot-product importance variant the paper
//! discusses (and rejects) in §IV-B, and races it against stock SEAFL.
//!
//! ```sh
//! cargo run --release --example custom_aggregator
//! ```

use seafl::core::engine::semi_async::{run_semi_async, Params};
use seafl::core::engine::setup::Environment;
use seafl::core::weighting::{aggregation_weights, ImportanceMode};
use seafl::core::{Aggregator, Algorithm, ExperimentConfig, ModelUpdate, StalenessPolicy};

/// SEAFL with dot-product importance instead of cosine similarity — the
/// magnitude-sensitive alternative from §IV-B.
struct DotProductSeafl {
    alpha: f32,
    mu: f32,
    beta: Option<u64>,
    theta: f32,
}

impl Aggregator for DotProductSeafl {
    fn name(&self) -> &'static str {
        "seafl-dot"
    }

    fn aggregate(&mut self, global: &[f32], updates: &[ModelUpdate], round: u64) -> Vec<f32> {
        let w = aggregation_weights(
            updates,
            global,
            round,
            self.alpha,
            self.mu,
            self.beta,
            ImportanceMode::DotProduct,
        );
        // Weighted buffer average followed by ϑ-mixing (Eqs. 7–8).
        let mut w_new = vec![0.0f32; global.len()];
        for (u, &wi) in updates.iter().zip(w.iter()) {
            for (o, &p) in w_new.iter_mut().zip(u.params.iter()) {
                *o += wi * p;
            }
        }
        global
            .iter()
            .zip(w_new.iter())
            .map(|(&g, &n)| (1.0 - self.theta) * g + self.theta * n)
            .collect()
    }
}

fn main() {
    // The config's algorithm field is used for validation/setup; the actual
    // aggregation rule is injected through `Params` below.
    let config = ExperimentConfig::quick(11, Algorithm::seafl(10, 5, Some(10)));

    println!("{:<22} {:>12} {:>10}", "aggregator", "t->80% (s)", "best acc");
    println!("{}", "-".repeat(46));

    // Stock SEAFL (cosine importance) via the normal entry point.
    let stock = seafl::core::run_experiment(&config);
    println!(
        "{:<22} {:>12} {:>10.3}",
        "seafl (cosine)",
        stock.time_to_accuracy(0.80).map_or("—".into(), |t| format!("{t:.0}")),
        stock.best_accuracy()
    );

    // Custom rule through the engine API.
    let mut env = Environment::build(&config);
    let params = Params {
        concurrency: 10,
        buffer_k: 5,
        beta: Some(10),
        policy: StalenessPolicy::WaitForStale,
        aggregator: Box::new(DotProductSeafl { alpha: 3.0, mu: 1.0, beta: Some(10), theta: 0.8 }),
        name: "seafl-dot",
    };
    let custom = run_semi_async(&config, &mut env, params);
    println!(
        "{:<22} {:>12} {:>10.3}",
        "seafl (dot-product)",
        custom.time_to_accuracy(0.80).map_or("—".into(), |t| format!("{t:.0}")),
        custom.best_accuracy()
    );

    println!("\nBoth runs share the same data, fleet and seed; only the");
    println!("importance measurement differs.");
}
