//! Quickstart: run SEAFL on a synthetic EMNIST-like federation and print
//! the accuracy-vs-time curve plus the time-to-target headline metric.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use seafl::core::{metrics, run_experiment, Algorithm, ExperimentConfig};

fn main() {
    // 40 simulated devices with heavy-tailed (Pareto) speeds, an MLP on a
    // synthetic 28×28 task, SEAFL server with buffer K = 5 and staleness
    // limit β = 10.
    let config = ExperimentConfig::quick(/*seed=*/ 1, Algorithm::seafl(10, 5, Some(10)));

    println!("running {} on {} clients ...", config.algorithm.name(), config.num_clients);
    let result = run_experiment(&config);

    println!("\naccuracy vs simulated wall-clock:");
    for (t, acc) in metrics::downsample(&result.accuracy, 12) {
        let bar = "#".repeat((acc * 40.0) as usize);
        println!("{t:>8.0}s  {:>5.1}%  {bar}", acc * 100.0);
    }

    println!("\nrounds: {}, client updates: {}", result.rounds, result.total_updates);
    match result.time_to_accuracy(0.80) {
        Some(t) => println!("time to 80% accuracy: {t:.0} simulated seconds"),
        None => println!("80% accuracy not reached (best: {:.1}%)", result.best_accuracy() * 100.0),
    }

    // Observability rides along by default (summary level, see
    // OBSERVABILITY.md): the metric registry comes home in `result.obs`.
    // `ObsConfig::full(path)` would additionally stream per-event JSONL
    // for the seafl-bench `report` tool.
    if let Some(stale) = result.obs.histograms.get("staleness_rounds") {
        println!(
            "aggregated-update staleness: p50 {:.1}, p95 {:.1} rounds (n={})",
            stale.p50, stale.p95, stale.count
        );
    }
    let phases: Vec<String> = result
        .obs
        .phases
        .iter()
        .filter(|p| p.secs > 0.0)
        .map(|p| format!("{} {:.2}s", p.name, p.secs))
        .collect();
    println!("host time by phase: {}", phases.join(", "));
}
