//! Plugging a user-defined [`ServerPolicy`] into the unified engine. This
//! implements the dot-product importance variant the paper discusses (and
//! rejects) in §IV-B as a custom policy, and races it against stock SEAFL.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use seafl::core::weighting::{aggregation_weights, ImportanceMode};
use seafl::core::{
    mix, run_with_policy, Algorithm, ExperimentConfig, ModelUpdate, ServerPolicy, ServerView,
};

/// SEAFL with dot-product importance instead of cosine similarity — the
/// magnitude-sensitive alternative from §IV-B. Only the weighting differs
/// from stock SEAFL; the engine supplies everything else (clock, sessions,
/// faults, checkpoints), and Algorithm 1's wait rule is three lines of
/// `should_aggregate`.
struct DotProductSeafl {
    concurrency: usize,
    buffer_k: usize,
    alpha: f32,
    mu: f32,
    beta: u64,
    theta: f32,
}

impl ServerPolicy for DotProductSeafl {
    fn name(&self) -> &'static str {
        "seafl-dot"
    }

    fn concurrency(&self) -> usize {
        self.concurrency
    }

    fn buffer_k(&self) -> usize {
        self.buffer_k
    }

    fn should_aggregate(&self, view: &ServerView) -> bool {
        // Algorithm 1's wait rule: defer while any in-flight update would
        // exceed β after this aggregation.
        view.buffer_len >= self.buffer_k
            && !view.in_flight.iter().any(|s| view.round.saturating_sub(s.born_round) >= self.beta)
    }

    fn weights_for_buffer(
        &self,
        updates: &[ModelUpdate],
        global: &[f32],
        round: u64,
    ) -> Vec<f32> {
        aggregation_weights(
            updates,
            global,
            round,
            self.alpha,
            self.mu,
            Some(self.beta),
            ImportanceMode::DotProduct,
        )
    }

    fn mix_into_global(&self, global: &[f32], avg: &[f32]) -> Vec<f32> {
        // Eq. 8's ϑ-mixing, shared with the stock policies.
        mix(global, avg, self.theta)
    }
}

fn main() {
    // The config's algorithm field is used for validation/setup; the actual
    // server behaviour is injected through `run_with_policy` below.
    let config = ExperimentConfig::quick(11, Algorithm::seafl(10, 5, Some(10)));

    println!("{:<22} {:>12} {:>10}", "policy", "t->80% (s)", "best acc");
    println!("{}", "-".repeat(46));

    // Stock SEAFL (cosine importance) via the normal entry point.
    let stock = seafl::core::run_experiment(&config);
    println!(
        "{:<22} {:>12} {:>10.3}",
        "seafl (cosine)",
        stock.time_to_accuracy(0.80).map_or("—".into(), |t| format!("{t:.0}")),
        stock.best_accuracy()
    );

    // Custom policy through the extension seam.
    let custom = run_with_policy(
        &config,
        Box::new(DotProductSeafl {
            concurrency: 10,
            buffer_k: 5,
            alpha: 3.0,
            mu: 1.0,
            beta: 10,
            theta: 0.8,
        }),
    );
    println!(
        "{:<22} {:>12} {:>10.3}",
        "seafl (dot-product)",
        custom.time_to_accuracy(0.80).map_or("—".into(), |t| format!("{t:.0}")),
        custom.best_accuracy()
    );

    println!("\nBoth runs share the same data, fleet and seed; only the");
    println!("importance measurement differs.");
}
