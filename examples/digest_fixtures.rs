//! Regenerate the refactor-guard digest fixtures.
//!
//! Runs every case in `seafl_core::test_support::fixture_cases` and prints
//! one `key model_digest trace_digest` line per case — redirect into
//! `tests/fixtures/digests.txt` to re-pin:
//!
//! ```text
//! cargo run --release --example digest_fixtures > tests/fixtures/digests.txt
//! ```
//!
//! Only re-pin when a numeric change is *intended*; the point of
//! `tests/refactor_guard.rs` is that refactors reproduce these digests
//! bit for bit.

use seafl::core::run_experiment;
use seafl::core::test_support::{fixture_cases, NUMERIC_EPOCH};

fn main() {
    println!("# numeric-epoch: {NUMERIC_EPOCH}");
    for case in fixture_cases() {
        let r = run_experiment(&case.cfg);
        eprintln!(
            "{}: rounds={} termination={:?}",
            case.key(),
            r.rounds,
            r.termination
        );
        println!("{} {:016x} {:016x}", case.key(), r.model_digest, r.trace.digest());
    }
}
