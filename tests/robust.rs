//! The Byzantine-robust aggregation layer, end to end.
//!
//! Four contracts, mirroring the layer's design guarantees:
//!
//! 1. **Inertness** — with the attack channel off and the `Mean` rule (the
//!    defaults), every policy produces digests bit-identical to a config
//!    that never mentions attacks at all, at one worker thread and at four.
//!    The robust layer costs nothing when unused.
//! 2. **Degenerate-parameter identity** — `TrimmedMean { beta: 0.0 }` is
//!    the mean, bit for bit, through a full training run.
//! 3. **Liveness under maximal screening** — a Krum rule that discards all
//!    but one update of every buffer still drives the run to completion.
//! 4. **Recovery** — a run killed mid-flight with attacks active (including
//!    the stateful stale-replay attacker and the stateful robust layer)
//!    resumes bit-identically from its newest snapshot.
//!
//! Plus the acceptance scenario: a pinned 30 % sign-flip + collusion fleet
//! where the plain mean fails the accuracy target but coordinate-median and
//! multi-Krum reach it, with Krum's screening decisions scored against the
//! ground-truth attacker set.

use seafl::core::robust::RobustAggregator;
use seafl::core::test_support::{apply_attack_overlay, tiny_cfg};
use seafl::core::{resume_experiment, run_experiment, Algorithm, ExperimentConfig, RunResult};
use seafl::nn::ModelKind;
use seafl::sim::{AttackConfig, AttackKind, AttackPlan, FleetConfig, TerminationReason};
use std::fs;
use std::path::PathBuf;

fn algorithms() -> [(&'static str, Algorithm); 6] {
    [
        ("seafl", Algorithm::seafl(6, 3, Some(10))),
        ("seafl2", Algorithm::seafl2(8, 3, 2)),
        ("fedbuff", Algorithm::fedbuff(6, 3)),
        ("fedasync", Algorithm::fedasync(6)),
        ("fedavg", Algorithm::FedAvg { clients_per_round: 6 }),
        ("fedstale", Algorithm::fedstale(6, 3)),
    ]
}

/// A short tiny-config run (digest comparisons need identity, not accuracy).
fn short_cfg(seed: u64, algorithm: Algorithm, threads: usize) -> ExperimentConfig {
    let mut c = tiny_cfg(seed, algorithm);
    c.stop_at_accuracy = None;
    c.max_rounds = 8;
    c.threads = threads;
    c
}

/// Contract 1: an armed-but-empty attack config (`kinds = []` is a no-op no
/// matter the probability) plus an explicit `Mean` rule and a non-default
/// distance metric must not perturb a single bit of any run. This is the
/// "attacks off ≡ seed" guarantee: the attack plan draws nothing, the mean
/// path is the literal pre-robust aggregation code, and the metric is inert
/// under a rule that never measures distances.
#[test]
fn idle_robust_layer_is_bit_identical_for_every_policy() {
    for (label, algorithm) in algorithms() {
        for threads in [1, 4] {
            let baseline = run_experiment(&short_cfg(11, algorithm.clone(), threads));
            let mut armed = short_cfg(11, algorithm.clone(), threads);
            armed.attack.attacker_prob = 0.7;
            armed.attack.kinds = vec![];
            armed.attack.collude_radius = 3.0;
            armed.robust.rule = RobustAggregator::Mean;
            armed.robust.metric = seafl::core::robust::DistanceMetric::Cosine;
            let r = run_experiment(&armed);
            assert!(r.attackers.is_empty(), "{label}/t{threads}: no-op plan marked attackers");
            assert_eq!(r.attacked_updates, 0, "{label}/t{threads}: no-op plan attacked");
            assert_eq!(
                r.model_digest, baseline.model_digest,
                "{label}/t{threads}: idle robust layer changed the model"
            );
            assert_eq!(
                r.trace.digest(),
                baseline.trace.digest(),
                "{label}/t{threads}: idle robust layer changed the event trace"
            );
        }
    }
}

/// Contract 2: β = 0 trims nothing, so `TrimmedMean` must reduce to the
/// weighted mean bitwise — through the full engine, not just the kernel.
#[test]
fn trimmed_mean_beta_zero_is_the_mean_end_to_end() {
    let mean = run_experiment(&short_cfg(5, Algorithm::seafl(6, 3, Some(10)), 1));
    let mut trimmed = short_cfg(5, Algorithm::seafl(6, 3, Some(10)), 1);
    trimmed.robust.rule = RobustAggregator::TrimmedMean { beta: 0.0 };
    let t = run_experiment(&trimmed);
    assert_eq!(t.model_digest, mean.model_digest, "β=0 trimmed mean diverged from the mean");
    assert_eq!(t.trace.digest(), mean.trace.digest(), "β=0 trimmed mean changed the trace");
}

/// Contract 3: `Krum { f: 0, multi: 1 }` over a buffer of 3 screens two of
/// every three updates — the heaviest screening the rule can express (it
/// always keeps at least one survivor, so an aggregation can never starve).
/// The run must still complete every round under a full adversarial fleet.
#[test]
fn maximal_krum_screening_keeps_the_engine_live() {
    let mut c = short_cfg(3, Algorithm::fedbuff(6, 3), 1);
    c.max_rounds = 12;
    apply_attack_overlay(&mut c);
    c.robust.rule = RobustAggregator::Krum { f: 0, multi: 1 };
    let r = run_experiment(&c);
    assert_eq!(r.termination, TerminationReason::MaxRounds, "run did not reach max_rounds");
    assert_eq!(r.rounds, 12, "screening stalled round progress");
    assert!(r.screened_updates > 0, "maximal Krum screened nothing");
    assert!(!r.screened_clients.is_empty(), "no screened-client ground truth recorded");
    let d = r.detection();
    assert!((0.0..=1.0).contains(&d.precision) && (0.0..=1.0).contains(&d.recall));
}

// ---------------------------------------------------------------------------
// Contract 4: kill-and-resume under active attack.
// ---------------------------------------------------------------------------

/// The crashing config: the checkpoint testbed (10 Pareto devices, thin MLP,
/// probability-1 server crash at round 3–4, every-round snapshots) with the
/// full attack overlay — all four `AttackKind`s — layered on top.
fn crash_cfg(seed: u64, algorithm: Algorithm, rule: RobustAggregator) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, algorithm);
    c.num_clients = 10;
    c.fleet = FleetConfig::pareto_fleet(10);
    c.train_per_class = 24;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    c.max_rounds = 10;
    c.stop_at_accuracy = None;
    apply_attack_overlay(&mut c);
    c.robust.rule = rule;
    c.faults.server_crash_prob = 1.0;
    c.faults.server_crash_window = (3, 4);
    c.checkpoint_every = Some(1);
    c.keep_last = 2;
    c
}

/// The counterfactual "the host never died" run of the same experiment.
fn reference_cfg(seed: u64, algorithm: Algorithm, rule: RobustAggregator) -> ExperimentConfig {
    let mut c = crash_cfg(seed, algorithm, rule);
    c.faults.server_crash_prob = 0.0;
    c.faults.server_crash_window = (0, 0);
    c.checkpoint_every = None;
    c
}

/// Find a seed whose attack plan actually exercises the stateful channels:
/// at least two attacker devices, at least one of them a stale-replayer
/// (whose last-upload memory rides the checkpoint). The search is over the
/// plan only — cheap and deterministic.
fn seed_with_replay_attacker(attack: &AttackConfig) -> u64 {
    (1..500)
        .find(|&seed| {
            let plan = AttackPlan::build(attack, 10, seed);
            let attackers = plan.attackers();
            attackers.len() >= 2
                && attackers
                    .iter()
                    .any(|&k| matches!(plan.kind(k), Some(AttackKind::StaleReplay)))
        })
        .expect("no seed in 1..500 yields a stale-replay attacker")
}

fn tmp_dir(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seafl-robust-test-{}-{case}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every observable output, compared bitwise — including the adversarial
/// and robust-layer counters the checkpoint extension carries.
fn assert_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.accuracy, b.accuracy, "{what}: accuracy curve diverged");
    assert_eq!(a.rounds, b.rounds, "{what}: round count diverged");
    assert_eq!(a.total_updates, b.total_updates, "{what}: update count diverged");
    assert_eq!(a.rejected_updates, b.rejected_updates, "{what}: rejections diverged");
    assert_eq!(a.rejected_nonfinite, b.rejected_nonfinite, "{what}: non-finite count diverged");
    assert_eq!(a.rejected_norm, b.rejected_norm, "{what}: norm-reject count diverged");
    assert_eq!(a.screened_updates, b.screened_updates, "{what}: screened count diverged");
    assert_eq!(a.clipped_updates, b.clipped_updates, "{what}: clipped count diverged");
    assert_eq!(a.attacked_updates, b.attacked_updates, "{what}: attacked count diverged");
    assert_eq!(a.attackers, b.attackers, "{what}: attacker set diverged");
    assert_eq!(a.screened_clients, b.screened_clients, "{what}: screened set diverged");
    assert_eq!(a.termination, b.termination, "{what}: termination reason diverged");
    assert_eq!(a.model_digest, b.model_digest, "{what}: final model diverged");
    assert_eq!(a.sim_time_end, b.sim_time_end, "{what}: end time diverged");
    assert_eq!(a.trace.entries(), b.trace.entries(), "{what}: event trace diverged");
}

/// An attacked run killed by the seeded server crash and resumed from disk
/// must equal the uninterrupted reference bit for bit — for a screening
/// rule (Krum), a combining rule (coordinate median) and a clipping rule
/// (norm-clip), so every piece of robust/replay state in the snapshot is
/// covered.
#[test]
fn kill_and_resume_under_active_attack_is_bit_identical() {
    let arms: [(&str, Algorithm, RobustAggregator); 3] = [
        ("median", Algorithm::seafl(5, 3, Some(5)), RobustAggregator::CoordMedian),
        ("krum", Algorithm::fedbuff(5, 3), RobustAggregator::Krum { f: 0, multi: 2 }),
        ("clip", Algorithm::fedasync(5), RobustAggregator::NormClip { tau: 0.5 }),
    ];
    let seed = seed_with_replay_attacker(&crash_cfg(0, Algorithm::fedbuff(5, 3), arms[0].2).attack);
    for (name, algorithm, rule) in arms {
        let dir = tmp_dir(name);
        let mut crash = crash_cfg(seed, algorithm.clone(), rule);
        crash.checkpoint_dir = Some(dir.clone());
        let reference = run_experiment(&reference_cfg(seed, algorithm, rule));
        assert!(
            reference.attacked_updates > 0,
            "{name}: premise failed — no attacked uploads in the reference run"
        );
        let interrupted = run_experiment(&crash);
        assert_eq!(
            interrupted.termination,
            TerminationReason::ServerCrash,
            "{name}: seeded server crash did not fire"
        );
        let resumed = resume_experiment(&crash, &dir).expect("resume failed");
        assert_identical(&resumed, &reference, name);
        let _ = fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Acceptance scenario: mean fails, median and Krum survive.
// ---------------------------------------------------------------------------

/// The pinned poisoning fleet: ~30 % of 10 devices attack via sign-flips
/// and same-value collusion (radius 2 — the colluders replace their entire
/// parameter vector with shared junk, devastating any mean).
fn poison_attack() -> AttackConfig {
    AttackConfig {
        attacker_prob: 0.3,
        kinds: vec![AttackKind::SignFlip, AttackKind::Collude],
        collude_radius: 2.0,
    }
}

/// Find a seed whose sampled attacker set is exactly 3 of 10 (the scenario's
/// pinned 30 %) with exactly one colluder — enough to wreck the mean, few
/// enough that colluders can never out-cluster honest devices under Krum.
fn poison_seed() -> u64 {
    let attack = poison_attack();
    (1..500)
        .find(|&seed| {
            let plan = AttackPlan::build(&attack, 10, seed);
            let attackers = plan.attackers();
            let colluders = attackers
                .iter()
                .filter(|&&k| matches!(plan.kind(k), Some(AttackKind::Collude)))
                .count();
            attackers.len() == 3 && colluders == 1
        })
        .expect("no seed in 1..500 yields 3 attackers with one colluder")
}

/// The accuracy testbed (matches tests/algorithms_e2e.rs calibration: the
/// honest baseline comfortably clears 0.5 in ~40 rounds).
fn poison_cfg(algorithm: Algorithm, rule: RobustAggregator) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(poison_seed(), algorithm);
    c.num_clients = 10;
    c.fleet = FleetConfig::pareto_fleet(10);
    c.train_per_class = 30;
    c.test_per_class = 10;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 24, num_classes: 10 };
    c.max_rounds = 50;
    c.max_sim_time = 1_000_000.0;
    c.stop_at_accuracy = None;
    c.attack = poison_attack();
    c.robust.rule = rule;
    c
}

const TARGET: f64 = 0.40;

/// The headline robustness claim. Under the pinned 30 % sign-flip +
/// collusion fleet:
///
/// * the undefended mean never reaches the accuracy target,
/// * coordinate-median does,
/// * multi-Krum does **and** its screening recalls most of the ground-truth
///   attacker set (precision is diluted by design: Krum drops `n − multi`
///   updates every round, honest or not, so recall is the meaningful axis).
#[test]
fn robust_rules_defeat_the_pinned_poisoning_fleet() {
    // Premise: the same testbed learns fine when nobody attacks.
    let mut honest = poison_cfg(Algorithm::fedbuff(5, 3), RobustAggregator::Mean);
    honest.attack = AttackConfig::none();
    let control = run_experiment(&honest);
    assert!(
        control.best_accuracy() > TARGET,
        "premise failed: honest run only reached {:.3}",
        control.best_accuracy()
    );

    let mean = run_experiment(&poison_cfg(Algorithm::fedbuff(5, 3), RobustAggregator::Mean));
    assert_eq!(mean.attackers.len(), 3, "pinned attacker set drifted");
    assert!(mean.attacked_updates > 0, "attackers never uploaded");
    assert!(
        mean.best_accuracy() < TARGET,
        "undefended mean unexpectedly survived the attack: {:.3}",
        mean.best_accuracy()
    );

    let median =
        run_experiment(&poison_cfg(Algorithm::fedbuff(5, 3), RobustAggregator::CoordMedian));
    assert!(
        median.best_accuracy() > TARGET,
        "coordinate median failed the target: {:.3}",
        median.best_accuracy()
    );

    // Krum needs n ≥ f + 3 to screen, so this arm buffers 8 of 10 devices:
    // with f = 3 it tolerates every attacker in the same buffer.
    let krum = run_experiment(&poison_cfg(
        Algorithm::fedbuff(8, 8),
        RobustAggregator::Krum { f: 3, multi: 4 },
    ));
    assert!(
        krum.best_accuracy() > TARGET,
        "multi-Krum failed the target: {:.3}",
        krum.best_accuracy()
    );
    assert!(krum.screened_updates > 0, "Krum screened nothing under attack");
    let d = krum.detection();
    assert!(
        d.recall > 0.5,
        "Krum recalled too few attackers: recall {:.2} (tp {} fn {})",
        d.recall,
        d.true_positives,
        d.false_negatives
    );
}
