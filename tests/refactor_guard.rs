//! Digest-equivalence refactor guard.
//!
//! Every seed algorithm, with and without faults, is run at one worker
//! thread and at four. The two executions must agree bit for bit on
//! `model_digest`/`trace_digest` — always. On top of that, any case with a
//! recorded entry in `tests/fixtures/digests.txt` must reproduce it
//! exactly; engine refactors that change numerics or event ordering fail
//! here before anything else.
//!
//! The guard is *self-pinning*: a case with no recorded entry is appended
//! to the fixture file on the first run (the committed file starts
//! header-only, because digests depend on the floating-point environment
//! they were produced in — pinning at build time would break the first
//! machine that differs). The cross-version check runs in CI's
//! refactor-guard job, which regenerates the fixture file at the PR's
//! merge-base and then runs this guard on the PR head: any digest the old
//! code produced that the new code does not reproduce fails the job.
//!
//! Re-pin manually (only for *intended* numeric changes):
//! `cargo run --release --example digest_fixtures > tests/fixtures/digests.txt`

use seafl::core::run_experiment;
use seafl::core::test_support::{fixture_cases, NUMERIC_EPOCH};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/digests.txt")
}

/// Parse the fixture file: `key model_digest trace_digest` per line, `#`
/// comments and blank lines ignored. Read at runtime (not `include_str!`)
/// so a CI job — or this guard's own self-pinning — can regenerate it
/// without a rebuild.
///
/// Entries pinned under a different `# numeric-epoch: N` header than the
/// code's [`NUMERIC_EPOCH`] are discarded wholesale: an *intended* numeric
/// change (a new GEMM accumulation order, say) bumps the epoch, and digests
/// recorded by pre-bump code — including a merge-base regeneration in CI's
/// refactor-guard job — must re-pin rather than fail the comparison.
fn read_recorded() -> (Vec<String>, BTreeMap<String, (u64, u64)>) {
    let text = std::fs::read_to_string(fixture_path()).unwrap_or_default();
    let header: Vec<String> = text
        .lines()
        .filter(|l| l.trim().is_empty() || l.starts_with('#'))
        .filter(|l| !l.starts_with("# numeric-epoch:"))
        .map(str::to_string)
        .collect();
    let file_epoch: u32 = text
        .lines()
        .find_map(|l| l.strip_prefix("# numeric-epoch:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    if file_epoch != NUMERIC_EPOCH {
        return (header, BTreeMap::new());
    }
    let entries = text
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut it = l.split_whitespace();
            let key = it.next().expect("fixture key").to_string();
            let model = u64::from_str_radix(it.next().expect("model digest"), 16)
                .expect("model digest is hex");
            let trace = u64::from_str_radix(it.next().expect("trace digest"), 16)
                .expect("trace digest is hex");
            (key, (model, trace))
        })
        .collect();
    (header, entries)
}

#[test]
fn digests_are_thread_invariant_and_match_recorded_fixtures() {
    let (header, mut recorded) = read_recorded();
    let mut pinned_new = false;
    for case in fixture_cases() {
        let key = case.key();

        // Run the case at both executor widths; thread count must never
        // leak into results, so this holds with or without fixtures.
        let mut digests = Vec::new();
        for threads in [1usize, 4] {
            let mut cfg = case.cfg.clone();
            cfg.threads = threads;
            let r = run_experiment(&cfg);
            digests.push((r.model_digest, r.trace.digest()));
        }
        assert_eq!(
            digests[0], digests[1],
            "{key}: 1-thread and 4-thread runs diverged \
             (t1 model={:016x} trace={:016x}, t4 model={:016x} trace={:016x})",
            digests[0].0, digests[0].1, digests[1].0, digests[1].1,
        );

        match recorded.get(&key) {
            Some(&(model, trace)) => {
                assert_eq!(
                    digests[0],
                    (model, trace),
                    "{key} drifted from the recorded digests \
                     (got model={:016x} trace={:016x})",
                    digests[0].0,
                    digests[0].1,
                );
            }
            None => {
                // First sighting on this machine: pin it.
                recorded.insert(key, digests[0]);
                pinned_new = true;
            }
        }
    }
    if pinned_new {
        let mut out = String::new();
        for line in &header {
            out.push_str(line);
            out.push('\n');
        }
        writeln!(out, "# numeric-epoch: {NUMERIC_EPOCH}").unwrap();
        for (key, (model, trace)) in &recorded {
            writeln!(out, "{key} {model:016x} {trace:016x}").unwrap();
        }
        std::fs::write(fixture_path(), out).expect("write pinned fixtures");
    }
}
