//! Data-heterogeneity axes: partition strategies and per-client feature
//! shift, end-to-end through the engine.

use seafl::core::{run_experiment, Algorithm, ExperimentConfig, PartitionStrategy};
use seafl::nn::ModelKind;
use seafl::sim::FleetConfig;

fn cfg(seed: u64, partition: PartitionStrategy) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, Algorithm::seafl(5, 3, Some(5)));
    c.num_clients = 10;
    c.fleet = FleetConfig::pareto_fleet(10);
    c.train_per_class = 30;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    c.max_rounds = 20;
    c.stop_at_accuracy = None;
    c.partition = partition;
    c
}

#[test]
fn every_partition_strategy_runs_and_learns() {
    for partition in [
        PartitionStrategy::Dirichlet { alpha: 0.3 },
        PartitionStrategy::Iid,
        PartitionStrategy::Shards { per_client: 2 },
        PartitionStrategy::QuantitySkew { tail: 1.2 },
    ] {
        let r = run_experiment(&cfg(1, partition));
        assert_eq!(r.rounds, 20, "{partition:?}");
        assert!(r.best_accuracy() > 0.4, "{partition:?} failed to learn: {:.3}", r.best_accuracy());
    }
}

#[test]
fn iid_learns_faster_than_pathological_shards() {
    let iid = run_experiment(&cfg(2, PartitionStrategy::Iid));
    let shards = run_experiment(&cfg(2, PartitionStrategy::Shards { per_client: 1 }));
    // One label per client is the worst case; IID must reach a (clearly)
    // higher accuracy in the same simulated schedule.
    assert!(
        iid.best_accuracy() > shards.best_accuracy() + 0.05,
        "iid {:.3} vs shards {:.3}",
        iid.best_accuracy(),
        shards.best_accuracy()
    );
}

#[test]
fn feature_shift_changes_dynamics_deterministically() {
    let base = cfg(3, PartitionStrategy::Dirichlet { alpha: 0.5 });
    let mut shifted = base.clone();
    shifted.feature_shift_sigma = 0.6;

    let r0 = run_experiment(&base);
    let r1 = run_experiment(&shifted);
    let r1b = run_experiment(&shifted);
    assert_ne!(r0.accuracy, r1.accuracy, "feature shift had no effect");
    assert_eq!(r1.accuracy, r1b.accuracy, "feature shift broke determinism");
    // Feature heterogeneity makes the task harder, never trivially easier.
    assert!(r1.best_accuracy() <= r0.best_accuracy() + 0.05);
}

#[test]
fn fedprox_constrains_drift_under_extreme_skew() {
    let mut plain = cfg(4, PartitionStrategy::Shards { per_client: 1 });
    plain.local_epochs = 8; // exaggerate local drift
    let mut prox = plain.clone();
    prox.prox_mu = 0.5;

    let r_plain = run_experiment(&plain);
    let r_prox = run_experiment(&prox);
    // Both run the same schedule; the proximal run must be a valid run
    // (same rounds) and not collapse.
    assert_eq!(r_plain.rounds, r_prox.rounds);
    assert!(r_prox.best_accuracy() > 0.3, "prox run collapsed");
}
