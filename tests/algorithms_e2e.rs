//! End-to-end integration: every algorithm runs, learns, and terminates on
//! a small federation.

use seafl::core::{run_experiment, Algorithm, ExperimentConfig};
use seafl::nn::ModelKind;
use seafl::sim::FleetConfig;

fn small_cfg(seed: u64, algorithm: Algorithm) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(seed, algorithm);
    cfg.num_clients = 10;
    cfg.fleet = FleetConfig::pareto_fleet(10);
    cfg.train_per_class = 30;
    cfg.test_per_class = 10;
    cfg.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 24, num_classes: 10 };
    cfg.max_rounds = 40;
    cfg.stop_at_accuracy = None;
    cfg
}

#[test]
fn seafl_learns() {
    let r = run_experiment(&small_cfg(1, Algorithm::seafl(5, 3, Some(10))));
    assert_eq!(r.algorithm, "seafl");
    assert!(r.best_accuracy() > 0.5, "best {:.3}", r.best_accuracy());
    assert_eq!(r.rounds, 40);
}

#[test]
fn seafl2_learns_and_notifies_under_tight_beta() {
    let r = run_experiment(&small_cfg(2, Algorithm::seafl2(8, 3, 1)));
    assert_eq!(r.algorithm, "seafl2");
    assert!(r.best_accuracy() > 0.5, "best {:.3}", r.best_accuracy());
    assert!(r.notifications > 0);
    // Each partial update requires a prior notification.
    assert!(r.partial_updates <= r.notifications);
}

#[test]
fn fedbuff_learns() {
    let r = run_experiment(&small_cfg(3, Algorithm::fedbuff(5, 3)));
    assert_eq!(r.algorithm, "fedbuff");
    assert!(r.best_accuracy() > 0.5, "best {:.3}", r.best_accuracy());
}

#[test]
fn fedasync_runs_one_aggregation_per_update() {
    let r = run_experiment(&small_cfg(4, Algorithm::fedasync(5)));
    assert_eq!(r.algorithm, "fedasync");
    assert_eq!(r.rounds as usize, r.total_updates);
}

#[test]
fn fedavg_learns_synchronously() {
    let mut cfg = small_cfg(5, Algorithm::FedAvg { clients_per_round: 5 });
    cfg.max_rounds = 25;
    let r = run_experiment(&cfg);
    assert_eq!(r.algorithm, "fedavg");
    assert!(r.best_accuracy() > 0.5, "best {:.3}", r.best_accuracy());
    // Synchronous: exactly clients_per_round updates per round.
    assert_eq!(r.total_updates, 25 * 5);
}

#[test]
fn accuracy_series_time_ordered_for_all_algorithms() {
    for (seed, alg) in [
        (6, Algorithm::seafl(5, 3, Some(5))),
        (7, Algorithm::fedbuff(5, 3)),
        (8, Algorithm::fedasync(5)),
        (9, Algorithm::FedAvg { clients_per_round: 4 }),
    ] {
        let mut cfg = small_cfg(seed, alg);
        cfg.max_rounds = 15;
        let r = run_experiment(&cfg);
        assert!(
            r.accuracy.windows(2).all(|w| w[0].0 <= w[1].0),
            "{}: series not time-ordered",
            r.algorithm
        );
        assert!(r.accuracy.len() >= 2, "{}: too few evals", r.algorithm);
        assert!(r.sim_time_end > 0.0);
    }
}

#[test]
fn max_sim_time_is_respected() {
    let mut cfg = small_cfg(10, Algorithm::fedbuff(5, 3));
    cfg.max_sim_time = 30.0;
    cfg.max_rounds = 100_000;
    let r = run_experiment(&cfg);
    // The engine stops at the first event past the limit; allow one
    // in-flight session of slack.
    assert!(r.accuracy.iter().all(|&(t, _)| t <= 30.0), "evaluated past the time limit");
    assert!(r.rounds < 100_000);
}
