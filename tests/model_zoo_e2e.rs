//! The three paper architectures run end-to-end through the federated
//! engine (tiny widths and round counts — these are wiring tests, the
//! benchmarks exercise the real scales).

use seafl::core::{run_experiment, Algorithm, ExperimentConfig};
use seafl::data::SyntheticSpec;
use seafl::nn::ModelKind;
use seafl::sim::FleetConfig;

fn tiny(seed: u64, model: ModelKind, spec: SyntheticSpec) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, Algorithm::seafl(4, 2, Some(5)));
    c.model = model;
    c.spec = spec;
    c.num_clients = 6;
    c.fleet = FleetConfig::pareto_fleet(6);
    c.train_per_class = 6;
    c.test_per_class = 3;
    c.batch_size = 10;
    c.local_epochs = 2;
    c.max_rounds = 3;
    c.stop_at_accuracy = None;
    c
}

#[test]
fn lenet5_federates() {
    let r = run_experiment(&tiny(
        1,
        ModelKind::LeNet5 { num_classes: 10 },
        SyntheticSpec::emnist_like(),
    ));
    assert_eq!(r.rounds, 3);
    assert!(r.accuracy.iter().all(|&(_, a)| (0.0..=1.0).contains(&a)));
}

#[test]
fn resnet18_federates() {
    let r = run_experiment(&tiny(
        2,
        ModelKind::ResNet18 { num_classes: 10, width_base: 2 },
        SyntheticSpec::cifar10_like(),
    ));
    assert_eq!(r.rounds, 3);
    assert!(r.accuracy.iter().all(|&(_, a)| a.is_finite()));
}

#[test]
fn resnet18_groupnorm_federates() {
    let r = run_experiment(&tiny(
        5,
        ModelKind::ResNet18Gn { num_classes: 10, width_base: 2 },
        SyntheticSpec::cifar10_like(),
    ));
    assert_eq!(r.rounds, 3);
    assert!(r.accuracy.iter().all(|&(_, a)| a.is_finite()));
}

#[test]
fn vgg16_federates() {
    let r = run_experiment(&tiny(
        3,
        ModelKind::Vgg16 { num_classes: 10, width_base: 2 },
        SyntheticSpec::cinic10_like(),
    ));
    assert_eq!(r.rounds, 3);
    assert!(r.accuracy.iter().all(|&(_, a)| a.is_finite()));
}

#[test]
fn lenet5_actually_learns_with_more_rounds() {
    let mut c = tiny(4, ModelKind::LeNet5 { num_classes: 10 }, SyntheticSpec::emnist_like());
    c.train_per_class = 12;
    c.max_rounds = 12;
    c.local_epochs = 3;
    let r = run_experiment(&c);
    let first = r.accuracy.first().unwrap().1;
    assert!(
        r.best_accuracy() > first + 0.25,
        "no learning signal: {first:.3} -> {:.3}",
        r.best_accuracy()
    );
}
