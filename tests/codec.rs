//! The update-codec contract, end to end: the default identity pipeline
//! (and anything lossless) is bit-neutral — same model digest, same event
//! trace as a codec-free run — while lossy pipelines move bytes and
//! digests *deterministically*, identical across thread counts and across
//! kill-and-resume. Plus the trait-level round-trip properties each codec
//! documents: top-k keeps exactly the k largest movers verbatim, int8
//! reconstruction error is bounded by half the quantization step, and the
//! generation delta is bit-exact including NaN payloads and signed zeros.

use seafl::core::{
    resume_experiment, run_experiment, Algorithm, CheckpointError, CodecConfig, CodecStage,
    ExperimentConfig, GenDelta, QuantInt8, RunResult, TopK, UpdateCodec,
};
use seafl::nn::ModelKind;
use seafl::sim::{FleetConfig, TerminationReason};
use std::fs;
use std::path::PathBuf;

/// The small deterministic testbed shared by the digest tests (same shape
/// as tests/obs.rs).
fn cfg(seed: u64, algorithm: Algorithm, threads: usize) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, algorithm);
    c.num_clients = 10;
    c.fleet = FleetConfig::pareto_fleet(10);
    c.train_per_class = 24;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    c.max_rounds = 8;
    c.stop_at_accuracy = None;
    c.threads = threads;
    c
}

fn topk_cfg(k: usize, error_feedback: bool) -> CodecConfig {
    CodecConfig { stages: vec![CodecStage::TopK { k }], error_feedback }
}

/// Digest-level equality: the bits an observer of the run can see.
fn assert_same_run(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.model_digest, b.model_digest, "{what}: final model diverged");
    assert_eq!(a.trace.digest(), b.trace.digest(), "{what}: event trace diverged");
    assert_eq!(a.accuracy, b.accuracy, "{what}: accuracy curve diverged");
    assert_eq!(a.rounds, b.rounds, "{what}: round count diverged");
}

fn all_algorithms() -> [Algorithm; 6] {
    [
        Algorithm::seafl(5, 3, Some(5)),
        Algorithm::seafl2(5, 3, 2),
        Algorithm::fedbuff(5, 3),
        Algorithm::fedasync(5),
        Algorithm::FedAvg { clients_per_round: 4 },
        Algorithm::fedstale(5, 3),
    ]
}

/// The headline neutrality guarantee: for every policy and both executors,
/// a run under the default (identity) codec is bit-identical to the same
/// run with error feedback armed on a lossless pipeline (the residual is
/// identically zero, so the store must stay untouched) and to a run whose
/// armed codec is lossless (`gendelta` — its projection is exact). Only
/// the byte accounting may differ between those arms.
#[test]
fn lossless_pipelines_are_bit_neutral_for_every_algorithm() {
    for alg in all_algorithms() {
        for threads in [1usize, 4] {
            let baseline = run_experiment(&cfg(31, alg, threads));
            let what = format!("{} threads={threads}", baseline.algorithm);
            assert_eq!(
                baseline.codec_bytes_raw, baseline.codec_bytes_encoded,
                "{what}: identity must be byte-neutral"
            );
            assert!(baseline.codec_bytes_raw > 0, "{what}: identity counted no update bytes");

            // EF on a lossless pipeline is a documented no-op.
            let mut ef = cfg(31, alg, threads);
            ef.codec.error_feedback = true;
            assert_same_run(&run_experiment(&ef), &baseline, &format!("{what} ef-on-identity"));

            // A lossless armed codec reshapes bytes, never the model.
            let mut lossless = cfg(31, alg, threads);
            lossless.codec =
                CodecConfig { stages: vec![CodecStage::GenDelta], error_feedback: false };
            let gd = run_experiment(&lossless);
            assert_same_run(&gd, &baseline, &format!("{what} gendelta"));
            assert_eq!(
                gd.codec_bytes_raw, baseline.codec_bytes_raw,
                "{what}: same run, same raw bytes"
            );
            assert!(gd.codec_bytes_encoded > 0, "{what}: gendelta encoded nothing");
        }
    }
}

/// Identity neutrality holds with the fault machinery fully armed: device
/// crashes, upload drops, and session timeouts exercise the retry/timeout
/// paths the codec seam must never disturb.
#[test]
fn identity_is_bit_neutral_under_faults() {
    for threads in [1usize, 4] {
        let mut base = cfg(47, Algorithm::seafl(5, 3, Some(5)), threads);
        base.faults.crash_prob = 0.15;
        base.faults.crash_window = (0.0, base.max_sim_time * 0.5);
        base.faults.upload_drop_prob = 0.1;
        base.resilience.session_timeout = Some(base.max_sim_time * 0.1);
        let baseline = run_experiment(&base);
        assert!(baseline.crashes + baseline.upload_failures > 0, "faults never fired");

        let mut ef = base.clone();
        ef.codec.error_feedback = true;
        assert_same_run(&run_experiment(&ef), &baseline, &format!("faults threads={threads}"));
    }
}

/// Lossy codecs change the model (that is their job), but deterministically:
/// the digests and byte counters of a top-k or int8 run are identical across
/// thread counts, the compression ratio is strictly below 1, and the
/// bytes-to-accuracy curve is consistent with the totals.
#[test]
fn lossy_codecs_are_deterministic_and_compress() {
    for codec in [
        topk_cfg(256, false),
        CodecConfig { stages: vec![CodecStage::QuantInt8], error_feedback: false },
    ] {
        let label = codec.label();
        let runs: Vec<RunResult> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let mut c = cfg(59, Algorithm::seafl(5, 3, Some(5)), threads);
                c.codec = codec.clone();
                run_experiment(&c)
            })
            .collect();
        assert_same_run(&runs[0], &runs[1], &format!("{label} threads 1 vs 4"));
        assert_eq!(
            (runs[0].codec_bytes_raw, runs[0].codec_bytes_encoded),
            (runs[1].codec_bytes_raw, runs[1].codec_bytes_encoded),
            "{label}: byte counters leaked the thread count"
        );
        assert!(
            runs[0].codec_bytes_encoded < runs[0].codec_bytes_raw,
            "{label}: compression ratio must be < 1 ({} vs {})",
            runs[0].codec_bytes_encoded,
            runs[0].codec_bytes_raw
        );

        // The per-round curve is cumulative and ends at the totals.
        let curve = &runs[0].bytes_curve;
        assert!(!curve.is_empty(), "{label}: empty bytes curve");
        assert!(
            curve.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1),
            "{label}: bytes curve is not monotone"
        );
        assert_eq!(
            *curve.last().unwrap(),
            (runs[0].codec_bytes_raw, runs[0].codec_bytes_encoded),
            "{label}: curve does not end at the run totals"
        );
        if let Some(first_acc) = runs[0].accuracy.first().map(|&(_, a)| a) {
            let b = runs[0].bytes_to_accuracy(first_acc);
            assert!(
                b.is_some_and(|b| b <= runs[0].codec_bytes_encoded),
                "{label}: bytes_to_accuracy inconsistent with totals"
            );
        }

        // And it really is lossy: the model differs from the identity run.
        let identity = run_experiment(&cfg(59, Algorithm::seafl(5, 3, Some(5)), 1));
        assert_ne!(
            runs[0].model_digest, identity.model_digest,
            "{label}: a lossy codec left the model untouched — seam not applied?"
        );
    }
}

/// Trait-level round-trip properties the codecs document.
#[test]
fn codec_round_trip_properties() {
    let n = 512;
    let reference: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
    let params: Vec<f32> =
        reference.iter().enumerate().map(|(i, &r)| r + (i as f32 * 0.11).cos() * 0.1).collect();

    // Top-k: exactly k coordinates move, each kept bit-verbatim, and the
    // blob beats raw f32 for k << n.
    let topk = TopK::new(32);
    let blob = topk.encode(&reference, &params);
    assert!(blob.len() < 4 * n, "top-k blob not smaller than raw");
    let out = topk.decode(&reference, &blob).unwrap();
    let moved = (0..n).filter(|&i| out[i].to_bits() != reference[i].to_bits()).count();
    assert_eq!(moved, 32, "top-k must move exactly k coordinates");
    for i in 0..n {
        assert!(
            out[i].to_bits() == reference[i].to_bits() || out[i].to_bits() == params[i].to_bits(),
            "top-k coordinate {i} is neither reference nor verbatim client value"
        );
    }

    // Int8: reconstruction error bounded by half the quantization step.
    let int8 = QuantInt8;
    let max_delta =
        params.iter().zip(&reference).map(|(p, r)| (p - r).abs()).fold(0.0f32, f32::max);
    let scale = max_delta / 127.0;
    let out = int8.project(&reference, &params);
    for i in 0..n {
        let err = (out[i] - params[i]).abs();
        // scale/2 plus one f32 rounding of the final `reference + code*scale`
        // add (the codec's documented bound).
        assert!(
            err <= scale * 0.5 + 1e-6,
            "int8 error {err} at {i} exceeds scale/2 = {}",
            scale * 0.5
        );
    }

    // GenDelta: bit-exact, including the awkward values, and small when
    // the update stayed close to the reference.
    let gd = GenDelta;
    let mut odd = reference.clone();
    odd[0] = -0.0;
    odd[1] = f32::from_bits(0x7fc0_1234); // NaN with a payload
    let blob = gd.encode(&reference, &odd);
    let back = gd.decode(&reference, &blob).unwrap();
    for i in 0..n {
        assert_eq!(back[i].to_bits(), odd[i].to_bits(), "gendelta not bit-exact at {i}");
    }
    let near: Vec<f32> = reference.clone();
    assert!(
        gd.encode(&reference, &near).len() < 4 * n / 2,
        "gendelta of an unmoved model should be far below raw size"
    );
}

/// The crashing config from tests/checkpoint_resume.rs with a lossy
/// error-feedback codec armed: residuals are live state and must ride the
/// snapshot.
fn crash_cfg(seed: u64, threads: usize) -> ExperimentConfig {
    let mut c = cfg(seed, Algorithm::seafl(5, 3, Some(5)), threads);
    c.max_rounds = 10;
    c.codec = topk_cfg(64, true);
    c.faults.server_crash_prob = 1.0;
    c.faults.server_crash_window = (3, 4);
    c.checkpoint_every = Some(1);
    c.keep_last = 2;
    c
}

fn tmp_dir(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seafl-codec-test-{}-{case}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Kill-and-resume under error feedback is bit-identical to the
/// uninterrupted run — the residual store round-trips through the
/// checkpoint's codec section, as do the byte counters and curve.
#[test]
fn error_feedback_survives_crash_and_resume() {
    for threads in [1usize, 4] {
        let dir = tmp_dir(&format!("ef-t{threads}"));
        let mut crash = crash_cfg(77, threads);
        crash.checkpoint_dir = Some(dir.clone());

        let crashed = run_experiment(&crash);
        assert_eq!(crashed.termination, TerminationReason::ServerCrash, "seeded crash missed");

        let mut uninterrupted = crash_cfg(77, threads);
        uninterrupted.faults.server_crash_prob = 0.0;
        uninterrupted.faults.server_crash_window = (0, 0);
        uninterrupted.checkpoint_every = None;
        let reference = run_experiment(&uninterrupted);

        let resumed = resume_experiment(&crash, &dir)
            .unwrap_or_else(|e| panic!("threads={threads}: resume failed: {e}"));
        let what = format!("ef resume threads={threads}");
        assert_same_run(&resumed, &reference, &what);
        assert_eq!(resumed.codec_bytes_raw, reference.codec_bytes_raw, "{what}: raw bytes");
        assert_eq!(
            resumed.codec_bytes_encoded, reference.codec_bytes_encoded,
            "{what}: encoded bytes"
        );
        assert_eq!(resumed.bytes_curve, reference.bytes_curve, "{what}: bytes curve");
        let _ = fs::remove_dir_all(&dir);
    }
}

/// The codec is part of the experiment's identity: a snapshot taken under
/// one codec refuses to restore into a run configured with another.
#[test]
fn codec_change_invalidates_checkpoints() {
    let dir = tmp_dir("cfgdrift");
    let mut crash = crash_cfg(55, 1);
    crash.checkpoint_dir = Some(dir.clone());
    let crashed = run_experiment(&crash);
    assert_eq!(crashed.termination, TerminationReason::ServerCrash);

    let mut drifted = crash_cfg(55, 1);
    drifted.codec = CodecConfig::default();
    drifted.checkpoint_dir = Some(dir.clone());
    let err = resume_experiment(&drifted, &dir).expect_err("codec drift must not restore");
    assert!(
        matches!(err, CheckpointError::NoValidCheckpoint { .. }),
        "expected NoValidCheckpoint, got: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}
