//! The TrainerPool bitwise-determinism guarantee, end to end: the `threads`
//! knob may change wall-clock time but must never change a single bit of a
//! run's results. A `threads = 8` run is compared field-for-field (including
//! the full event trace) against the exact `threads = 1` sequential legacy
//! code path, for every algorithm, with faults, and with the gradient probe.

use seafl::core::{run_experiment, Algorithm, ExperimentConfig, RunResult};
use seafl::nn::ModelKind;
use seafl::sim::FleetConfig;

fn cfg(seed: u64, algorithm: Algorithm, threads: usize) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, algorithm);
    c.num_clients = 10;
    c.fleet = FleetConfig::pareto_fleet(10);
    c.train_per_class = 24;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    c.max_rounds = 10;
    c.stop_at_accuracy = None;
    c.threads = threads;
    c
}

/// Every observable output of a run, compared bitwise. `Vec<(f64, f64)>`
/// equality is exact (`f64::eq`), so any floating-point divergence anywhere
/// in training or evaluation fails here.
fn assert_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.accuracy, b.accuracy, "{what}: accuracy curve diverged");
    assert_eq!(a.grad_norms, b.grad_norms, "{what}: grad-norm curve diverged");
    assert_eq!(a.rounds, b.rounds, "{what}: round count diverged");
    assert_eq!(a.total_updates, b.total_updates, "{what}: update count diverged");
    assert_eq!(a.partial_updates, b.partial_updates, "{what}: partial updates diverged");
    assert_eq!(a.dropped_updates, b.dropped_updates, "{what}: dropped updates diverged");
    assert_eq!(a.notifications, b.notifications, "{what}: notifications diverged");
    assert_eq!(a.crashes, b.crashes, "{what}: crash count diverged");
    assert_eq!(a.upload_failures, b.upload_failures, "{what}: upload failures diverged");
    assert_eq!(a.retries, b.retries, "{what}: retry count diverged");
    assert_eq!(a.timeouts, b.timeouts, "{what}: timeout count diverged");
    assert_eq!(a.rejected_updates, b.rejected_updates, "{what}: rejections diverged");
    assert_eq!(a.termination, b.termination, "{what}: termination reason diverged");
    assert_eq!(a.sim_time_end, b.sim_time_end, "{what}: end time diverged");
    assert_eq!(a.trace.entries(), b.trace.entries(), "{what}: event trace diverged");
}

#[test]
fn threads_never_change_results_any_algorithm() {
    for alg in [
        Algorithm::seafl(5, 3, Some(5)),
        Algorithm::seafl2(5, 3, 2),
        Algorithm::fedbuff(5, 3),
        Algorithm::fedasync(5),
        Algorithm::FedAvg { clients_per_round: 4 },
    ] {
        let seq = run_experiment(&cfg(77, alg, 1));
        let par = run_experiment(&cfg(77, alg, 8));
        assert_identical(&seq, &par, seq.algorithm);
    }
}

#[test]
fn auto_sized_pool_matches_sequential() {
    // threads = 0 sizes the pool to the rayon default — whatever that is on
    // the host (or under RAYON_NUM_THREADS in CI), results must not move.
    let seq = run_experiment(&cfg(31, Algorithm::seafl(5, 3, Some(5)), 1));
    let auto = run_experiment(&cfg(31, Algorithm::seafl(5, 3, Some(5)), 0));
    assert_identical(&seq, &auto, "seafl threads=0");
}

#[test]
fn grad_norm_probe_deterministic_across_threads() {
    let mk = |threads| {
        let mut c = cfg(19, Algorithm::seafl(5, 3, Some(5)), threads);
        c.grad_norm_probe = true;
        c
    };
    let seq = run_experiment(&mk(1));
    let par = run_experiment(&mk(8));
    assert!(!seq.grad_norms.is_empty(), "probe produced no samples");
    assert_identical(&seq, &par, "seafl grad-norm probe");
}

#[test]
fn faulty_runs_deterministic_across_threads() {
    // Fault injection exercises the retry/timeout/sanitizer paths, whose
    // RNG draws and reschedules must also be independent of the executor.
    let mk = |threads| {
        let mut c = cfg(42, Algorithm::seafl2(5, 3, 3), threads);
        c.faults.crash_prob = 0.2;
        c.faults.crash_window = (0.0, c.max_sim_time * 0.5);
        c.faults.upload_drop_prob = 0.15;
        c.resilience.session_timeout = Some(c.max_sim_time * 0.1);
        c
    };
    let seq = run_experiment(&mk(1));
    let par = run_experiment(&mk(8));
    assert_identical(&seq, &par, "seafl2 under faults");
}

#[test]
fn thread_counts_agree_pairwise() {
    // Not just 1-vs-8: every width lands on the same result, so the
    // guarantee is "thread-count independent", not "8 happens to match 1".
    let runs: Vec<RunResult> = [1, 2, 3, 8]
        .iter()
        .map(|&t| run_experiment(&cfg(7, Algorithm::fedbuff(5, 3), t)))
        .collect();
    for pair in runs.windows(2) {
        assert_identical(&pair[0], &pair[1], "fedbuff width sweep");
    }
}
