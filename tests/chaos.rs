//! Fault-injection acceptance tests: the four scenarios the resilience
//! layer must survive (crash + timeout liveness, Byzantine rejection,
//! transient-loss retry, and fault-schedule reproducibility).

use seafl::core::{run_experiment, Algorithm, ExperimentConfig};
use seafl::nn::ModelKind;
use seafl::sim::{CorruptionKind, FaultPlan, FleetConfig, TerminationReason, TraceEvent};

fn cfg(seed: u64, algorithm: Algorithm) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, algorithm);
    c.num_clients = 12;
    c.fleet = FleetConfig::pareto_fleet(12);
    c.train_per_class = 24;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 24, num_classes: 10 };
    c.max_rounds = 40;
    c.max_sim_time = 100_000.0;
    c.stop_at_accuracy = None;
    c
}

/// Find a seed whose sampled fault plan has between `lo` and `hi` devices
/// affected by the given selector — keeps the scenario tests deterministic
/// without hand-picking magic seeds.
fn seed_where(
    base: &ExperimentConfig,
    lo: usize,
    hi: usize,
    affected: impl Fn(&FaultPlan, usize) -> bool,
) -> u64 {
    (1000..1200)
        .find(|&s| {
            let plan = FaultPlan::build(&base.faults, base.num_clients, s);
            let n = (0..base.num_clients).filter(|&k| affected(&plan, k)).count();
            (lo..=hi).contains(&n)
        })
        .expect("no seed in 1000..1200 matches the fault-count window")
}

/// (a) A crashed device stalls SEAFL's wait-for-stale scan forever; the
/// session timeout reclaims it and restores liveness.
#[test]
fn crash_starves_seafl_and_timeout_restores_liveness() {
    let mut base = cfg(0, Algorithm::seafl(6, 3, Some(3)));
    base.faults.crash_prob = 0.25;
    base.faults.crash_window = (0.0, 10.0);
    let seed = seed_where(&base, 1, 3, |p, k| p.crash_time(k).is_some());

    let mut no_timeout = cfg(seed, Algorithm::seafl(6, 3, Some(3)));
    no_timeout.faults = base.faults;
    let mut with_timeout = no_timeout.clone();
    with_timeout.resilience.session_timeout = Some(25.0);

    let stalled = run_experiment(&no_timeout);
    let recovered = run_experiment(&with_timeout);

    // Without a timeout the crashed in-flight session eventually exceeds
    // beta and blocks aggregation; the queue runs dry with updates stuck
    // in the buffer.
    assert_eq!(stalled.termination, TerminationReason::Starved);
    assert_eq!(stalled.timeouts, 0);
    // With the timeout the server reclaims the dead session and the run
    // reaches its round budget.
    assert!(recovered.timeouts > 0, "timeout never fired");
    assert_eq!(recovered.termination, TerminationReason::MaxRounds);
    assert!(
        recovered.rounds > stalled.rounds,
        "timeout did not unblock progress: {} vs {}",
        recovered.rounds,
        stalled.rounds
    );
}

/// (b) NaN-corrupting clients are all rejected by the sanitizer; the run
/// still learns from the honest majority and the global model never goes
/// non-finite.
#[test]
fn nan_corrupters_are_rejected_and_run_still_improves() {
    let mut base = cfg(0, Algorithm::fedbuff(6, 3));
    base.faults.corrupt_prob = 0.2;
    base.faults.corruption = CorruptionKind::NanBurst { count: 8 };
    let seed = seed_where(&base, 1, 3, |p, k| p.corruption(k).is_some());

    let mut faulty = cfg(seed, Algorithm::fedbuff(6, 3));
    faulty.faults = base.faults;
    faulty.max_rounds = 60; // room for the honest majority to clearly learn
    let r = run_experiment(&faulty);

    assert!(r.rejected_updates > 0, "sanitizer never fired");
    // Every rejection names a corrupt device, and no corrupt device's
    // update is ever aggregated: the updates consumed by each Aggregate
    // exclude the corrupters.
    let plan = FaultPlan::build(&faulty.faults, faulty.num_clients, faulty.seed);
    let mut pending: Vec<usize> = Vec::new();
    for (_, ev) in r.trace.entries() {
        match ev {
            TraceEvent::Upload { id, .. } => pending.push(id.index()),
            TraceEvent::Rejected { id, .. } => {
                assert!(plan.corruption(id.index()).is_some(), "honest client {id} rejected");
                pending.retain(|&p| p != id.index());
            }
            TraceEvent::Aggregate { .. } => {
                for id in pending.drain(..) {
                    assert!(plan.corruption(id).is_none(), "corrupt client {id} aggregated");
                }
            }
            _ => {}
        }
    }
    for (_, acc) in &r.accuracy {
        assert!(acc.is_finite(), "global model went non-finite");
    }
    let first = r.accuracy.first().unwrap().1;
    assert!(r.best_accuracy() > first + 0.2, "honest majority failed to learn");
}

/// (c) Transient upload loss with retry/backoff reaches the same accuracy
/// milestone within 2x the fault-free sim time.
#[test]
fn transient_loss_with_retry_converges_within_2x() {
    let healthy_cfg = cfg(7, Algorithm::fedbuff(6, 3));
    let mut lossy_cfg = healthy_cfg.clone();
    lossy_cfg.faults.upload_drop_prob = 0.2;

    let healthy = run_experiment(&healthy_cfg);
    let lossy = run_experiment(&lossy_cfg);
    assert!(lossy.upload_failures > 0, "no upload was ever dropped");
    assert!(lossy.retries > 0, "no retry was scheduled");

    // Milestone: 70 % of the healthy run's accuracy gain — on the steep
    // part of both curves, so trajectory noise can't strand the lossy run
    // below it.
    let first = healthy.accuracy.first().unwrap().1;
    let target = first + 0.7 * (healthy.best_accuracy() - first);
    let t_healthy = healthy.time_to_accuracy(target).expect("healthy run misses own milestone");
    let t_lossy =
        lossy.time_to_accuracy(target).expect("lossy run never reached the fault-free milestone");
    assert!(
        t_lossy <= 2.0 * t_healthy,
        "retry failed the 2x bound: {t_lossy:.1}s vs {t_healthy:.1}s fault-free"
    );
}

/// (d) Same seed + same fault config reproduce identical traces, for every
/// algorithm, under the full fault mix.
#[test]
fn same_seed_and_fault_plan_reproduce_identical_traces() {
    for alg in [
        Algorithm::seafl(5, 3, Some(5)),
        Algorithm::seafl2(5, 3, 2),
        Algorithm::fedbuff(5, 3),
        Algorithm::fedasync(5),
    ] {
        let mut c = cfg(77, alg);
        c.max_rounds = 15;
        c.faults.crash_prob = 0.2;
        c.faults.crash_window = (0.0, 20.0);
        c.faults.upload_drop_prob = 0.15;
        c.faults.straggler_prob = 0.3;
        c.faults.straggler_window = (0.0, 10.0);
        c.faults.straggler_duration = 10.0;
        c.faults.straggler_factor = 3.0;
        c.faults.corrupt_prob = 0.1;
        c.resilience.session_timeout = Some(25.0);
        let a = run_experiment(&c);
        let b = run_experiment(&c);
        assert_eq!(a.trace.entries(), b.trace.entries(), "{} trace diverged", a.algorithm);
        assert_eq!(a.accuracy, b.accuracy, "{} accuracy diverged", a.algorithm);
        assert_eq!(a.sim_time_end, b.sim_time_end);
        assert_eq!(
            (a.crashes, a.upload_failures, a.retries, a.timeouts, a.rejected_updates),
            (b.crashes, b.upload_failures, b.retries, b.timeouts, b.rejected_updates),
        );
    }
}
