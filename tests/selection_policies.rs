//! Client-selection policies end-to-end: speed-biased selection changes
//! participation and wall-clock behaviour; the default stays uniform.

use seafl::core::{run_experiment, Algorithm, ExperimentConfig, SelectionPolicy};
use seafl::nn::ModelKind;
use seafl::sim::{FleetConfig, TraceEvent};

fn cfg(seed: u64, selection: SelectionPolicy) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, Algorithm::fedbuff(5, 3));
    c.num_clients = 12;
    c.fleet = FleetConfig::pareto_fleet(12);
    c.train_per_class = 24;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    c.max_rounds = 25;
    c.stop_at_accuracy = None;
    c.selection = selection;
    c
}

/// Mean speed factor over all client-start events.
fn mean_started_speed(r: &seafl::core::RunResult, fleet: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (_, ev) in r.trace.entries() {
        if let TraceEvent::ClientStart { id, .. } = ev {
            total += fleet[id.index()];
            n += 1;
        }
    }
    total / n as f64
}

#[test]
fn fast_bias_starts_faster_devices() {
    let base = cfg(1, SelectionPolicy::Uniform);
    let fleet_speeds: Vec<f64> =
        base.fleet.build(base.seed).iter().map(|d| d.speed_factor).collect();

    let uniform = run_experiment(&base);
    let fast = run_experiment(&cfg(1, SelectionPolicy::SpeedBiased { exponent: 3.0 }));
    let slow = run_experiment(&cfg(1, SelectionPolicy::SpeedBiased { exponent: -3.0 }));

    let mu = mean_started_speed(&uniform, &fleet_speeds);
    let mf = mean_started_speed(&fast, &fleet_speeds);
    let ms = mean_started_speed(&slow, &fleet_speeds);
    // Remember: speed_factor is a *slowness* multiplier (1 = fastest tier),
    // so favouring fast devices lowers the mean factor.
    assert!(mf < mu, "fast bias did not lower mean factor: {mf} vs {mu}");
    assert!(ms > mu, "slow boost did not raise mean factor: {ms} vs {mu}");
}

#[test]
fn fast_bias_finishes_rounds_sooner() {
    let uniform = run_experiment(&cfg(2, SelectionPolicy::Uniform));
    let fast = run_experiment(&cfg(2, SelectionPolicy::SpeedBiased { exponent: 3.0 }));
    assert_eq!(uniform.rounds, fast.rounds);
    assert!(
        fast.sim_time_end < uniform.sim_time_end,
        "fast-biased selection should compress the schedule: {} vs {}",
        fast.sim_time_end,
        uniform.sim_time_end
    );
}

#[test]
fn biased_selection_is_deterministic() {
    let a = run_experiment(&cfg(3, SelectionPolicy::SpeedBiased { exponent: 2.0 }));
    let b = run_experiment(&cfg(3, SelectionPolicy::SpeedBiased { exponent: 2.0 }));
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.sim_time_end, b.sim_time_end);
}

#[test]
fn fedavg_supports_biased_selection() {
    let mut c = cfg(4, SelectionPolicy::SpeedBiased { exponent: 3.0 });
    c.algorithm = Algorithm::FedAvg { clients_per_round: 5 };
    c.max_rounds = 10;
    let mut u = c.clone();
    u.selection = SelectionPolicy::Uniform;
    let biased = run_experiment(&c);
    let uniform = run_experiment(&u);
    // Rounds are bounded by the slowest selected device; biasing toward
    // fast devices must shorten the synchronous schedule.
    assert!(biased.sim_time_end < uniform.sim_time_end);
}
