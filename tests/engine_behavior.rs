//! Behavioural tests of the unified event-driven engine across every
//! [`ServerPolicy`]: protocol invariants (buffering, staleness bounds,
//! partial training, concurrency), determinism, fault injection and
//! resilience, plus the custom-policy extension seam.
//!
//! These started life as inline `#[cfg(test)]` tests of the
//! semi-asynchronous engine; they moved here when the engines were unified,
//! and share their config builder with the digest fixtures through
//! `seafl::core::test_support`.

use seafl::core::test_support::tiny_cfg;
use seafl::core::{
    run_experiment, run_with_policy, Admission, Algorithm, ModelUpdate, ServerPolicy,
};
use seafl::sim::{CorruptionKind, TerminationReason, TraceEvent};

#[test]
fn fedbuff_runs_and_aggregates() {
    let r = run_experiment(&tiny_cfg(0, Algorithm::fedbuff(6, 3)));
    assert_eq!(r.algorithm, "fedbuff");
    assert_eq!(r.rounds, 30);
    assert!(r.total_updates >= 90, "updates: {}", r.total_updates);
    assert_eq!(r.partial_updates, 0);
    assert_eq!(r.notifications, 0);
    assert!(r.sim_time_end > 0.0);
}

#[test]
fn seafl_runs_and_improves_accuracy() {
    let mut cfg = tiny_cfg(1, Algorithm::seafl(6, 3, Some(10)));
    cfg.max_rounds = 60;
    let r = run_experiment(&cfg);
    assert_eq!(r.algorithm, "seafl");
    let first = r.accuracy.first().unwrap().1;
    let best = r.best_accuracy();
    assert!(best > first + 0.2, "no learning: {first} -> {best}");
}

#[test]
fn fedasync_aggregates_every_upload() {
    let r = run_experiment(&tiny_cfg(2, Algorithm::fedasync(6)));
    assert_eq!(r.algorithm, "fedasync");
    // K = 1: every upload triggers an aggregation.
    assert_eq!(r.rounds as usize, r.total_updates);
}

#[test]
fn seafl2_produces_partial_updates_under_tight_beta() {
    let mut cfg = tiny_cfg(3, Algorithm::seafl2(8, 3, 1));
    cfg.max_rounds = 50;
    let r = run_experiment(&cfg);
    assert_eq!(r.algorithm, "seafl2");
    assert!(r.notifications > 0, "no notifications sent");
    assert!(r.partial_updates > 0, "no partial updates");
}

#[test]
fn seafl_wait_bounds_aggregated_staleness() {
    let mut cfg = tiny_cfg(4, Algorithm::seafl(8, 3, Some(2)));
    cfg.max_rounds = 50;
    let r = run_experiment(&cfg);
    // Reconstruct aggregated staleness from the trace: every Upload's
    // born_round vs the round counter at its consuming Aggregate.
    let mut pending: std::collections::HashMap<usize, u64> = Default::default();
    let mut max_staleness = 0u64;
    for (_, ev) in r.trace.entries() {
        match ev {
            TraceEvent::Upload { id, born_round, .. } => {
                pending.insert(id.index(), *born_round);
            }
            TraceEvent::Aggregate { round, .. } => {
                let at = round - 1; // round counter before increment
                for (_, born) in pending.drain() {
                    max_staleness = max_staleness.max(at.saturating_sub(born));
                }
            }
            _ => {}
        }
    }
    assert!(max_staleness <= 2, "aggregated staleness {max_staleness} exceeded beta=2");
}

#[test]
fn drop_policy_discards_stale_and_still_learns() {
    let mut cfg = tiny_cfg(11, Algorithm::seafl_drop(8, 3, 1));
    cfg.max_rounds = 50;
    let r = run_experiment(&cfg);
    assert_eq!(r.algorithm, "seafl-drop");
    assert!(r.dropped_updates > 0, "tight beta never dropped anything");
    // Dropped updates never reach an aggregation: reconstruct from the
    // trace that every aggregated update obeyed the limit.
    let mut pending: std::collections::HashMap<usize, u64> = Default::default();
    for (_, ev) in r.trace.entries() {
        match ev {
            TraceEvent::Upload { id, born_round, .. } => {
                pending.insert(id.index(), *born_round);
            }
            TraceEvent::Drop { id, .. } => {
                pending.remove(&id.index());
            }
            TraceEvent::Aggregate { round, .. } => {
                let at = round - 1;
                for (_, born) in pending.drain() {
                    assert!(at.saturating_sub(born) <= 1, "stale update aggregated");
                }
            }
            _ => {}
        }
    }
    assert!(r.best_accuracy() > 0.4, "drop policy prevented learning");
}

#[test]
fn deterministic_across_runs() {
    let cfg = tiny_cfg(5, Algorithm::seafl(6, 3, Some(10)));
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.total_updates, b.total_updates);
}

#[test]
fn different_seeds_give_different_schedules() {
    let a = run_experiment(&tiny_cfg(6, Algorithm::fedbuff(6, 3)));
    let b = run_experiment(&tiny_cfg(7, Algorithm::fedbuff(6, 3)));
    assert_ne!(a.accuracy, b.accuracy);
}

#[test]
fn stop_at_accuracy_halts_early() {
    let mut cfg = tiny_cfg(8, Algorithm::fedbuff(6, 3));
    cfg.stop_at_accuracy = Some(0.05); // trivially reachable
    cfg.max_rounds = 1000;
    let r = run_experiment(&cfg);
    assert!(r.rounds < 1000, "did not stop early");
    assert_eq!(r.termination, TerminationReason::TargetAccuracy);
}

#[test]
fn concurrency_respected_in_trace() {
    let cfg = tiny_cfg(9, Algorithm::fedbuff(4, 2));
    let r = run_experiment(&cfg);
    // Active session count never exceeds concurrency = 4.
    let mut active = 0i64;
    for (_, ev) in r.trace.entries() {
        match ev {
            TraceEvent::ClientStart { .. } => {
                active += 1;
                assert!(active <= 4, "concurrency exceeded");
            }
            TraceEvent::Upload { .. } => active -= 1,
            _ => {}
        }
    }
}

#[test]
fn fedstale_boosts_and_still_learns() {
    let mut cfg = tiny_cfg(10, Algorithm::fedstale(6, 3));
    cfg.max_rounds = 60;
    let r = run_experiment(&cfg);
    assert_eq!(r.algorithm, "fedstale");
    assert_eq!(r.rounds, 60);
    let first = r.accuracy.first().unwrap().1;
    let best = r.best_accuracy();
    assert!(best > first + 0.2, "no learning: {first} -> {best}");
}

// ---- fault injection & resilience ----

#[test]
fn fault_free_runs_report_zero_fault_counters() {
    let r = run_experiment(&tiny_cfg(0, Algorithm::fedbuff(6, 3)));
    assert_eq!(r.crashes, 0);
    assert_eq!(r.upload_failures, 0);
    assert_eq!(r.retries, 0);
    assert_eq!(r.timeouts, 0);
    assert_eq!(r.quarantined, 0);
    assert_eq!(r.rejected_updates, 0);
    assert_eq!(r.termination, TerminationReason::MaxRounds);
    assert_eq!(r.trace.termination(), Some(TerminationReason::MaxRounds));
}

#[test]
fn universal_crash_with_timeout_drains_instead_of_hanging() {
    let mut cfg = tiny_cfg(20, Algorithm::seafl(6, 3, Some(5)));
    cfg.faults.crash_prob = 1.0;
    // Sessions in this config take ~0.5–5 s; every device dies within
    // the first few of them.
    cfg.faults.crash_window = (0.0, 5.0);
    cfg.resilience.session_timeout = Some(20.0);
    cfg.resilience.quarantine_after = 2;
    let r = run_experiment(&cfg);
    assert!(r.crashes > 0, "no crash ever materialized");
    assert!(r.timeouts > 0, "no session was reclaimed");
    assert!(r.quarantined > 0, "no client was quarantined");
    // Every client eventually crashes and is quarantined; the clock runs
    // dry instead of the run hanging on WaitForStale.
    assert!(
        matches!(r.termination, TerminationReason::QueueDrained | TerminationReason::Starved),
        "unexpected termination: {:?}",
        r.termination
    );
}

#[test]
fn all_corrupted_updates_are_rejected() {
    let mut cfg = tiny_cfg(21, Algorithm::fedbuff(6, 3));
    cfg.faults.corrupt_prob = 1.0;
    cfg.faults.corruption = CorruptionKind::NanBurst { count: 4 };
    // No aggregation will ever succeed, so the run lasts until the
    // clock cap; keep it short.
    cfg.max_sim_time = 50.0;
    let r = run_experiment(&cfg);
    assert!(r.rejected_updates > 0, "sanitizer never fired");
    // Every device corrupts, so nothing is ever aggregated and the
    // global model never goes non-finite.
    assert_eq!(r.rounds, 0);
    for (_, acc) in &r.accuracy {
        assert!(acc.is_finite());
    }
}

#[test]
fn transient_upload_loss_retries_and_still_finishes() {
    let mut cfg = tiny_cfg(22, Algorithm::fedbuff(6, 3));
    cfg.faults.upload_drop_prob = 0.3;
    let r = run_experiment(&cfg);
    assert!(r.upload_failures > 0, "no upload was ever dropped");
    assert!(r.retries > 0, "no retry was scheduled");
    assert_eq!(r.rounds, 30, "retries failed to keep the run progressing");
}

#[test]
fn straggler_spikes_stretch_the_schedule() {
    let base = tiny_cfg(24, Algorithm::fedbuff(6, 3));
    let mut slow = base.clone();
    slow.faults.straggler_prob = 1.0;
    slow.faults.straggler_window = (0.0, 1.0);
    slow.faults.straggler_duration = 1e9; // effectively the whole run
    slow.faults.straggler_factor = 4.0;
    slow.max_sim_time = 1_000_000.0; // room to still finish 30 rounds
    let a = run_experiment(&base);
    let b = run_experiment(&slow);
    assert_eq!(a.rounds, b.rounds);
    assert!(
        b.sim_time_end > a.sim_time_end,
        "4x compute spike did not slow the run: {} vs {}",
        a.sim_time_end,
        b.sim_time_end
    );
}

#[test]
fn superseded_uploads_never_double_consume() {
    // Tight beta makes SEAFL² reschedule uploads, leaving dangling
    // events; each must be ignored exactly once and never consume a
    // later session (per-client generations are monotonic).
    let mut cfg = tiny_cfg(3, Algorithm::seafl2(8, 3, 1));
    cfg.max_rounds = 50;
    let r = run_experiment(&cfg);
    assert!(r.notifications > 0, "no reschedules happened");
    assert!(r.superseded_uploads > 0, "no dangling event was ever popped");
    // Trace invariant: per client, ClientStart/Upload strictly
    // alternate — a session is consumed at most once.
    let mut outstanding = vec![0i64; cfg.num_clients];
    for (_, ev) in r.trace.entries() {
        match ev {
            TraceEvent::ClientStart { id, .. } => {
                outstanding[id.index()] += 1;
                assert_eq!(outstanding[id.index()], 1, "client {id} restarted mid-session");
            }
            TraceEvent::Upload { id, .. } => {
                outstanding[id.index()] -= 1;
                assert_eq!(outstanding[id.index()], 0, "client {id} session consumed twice");
            }
            _ => {}
        }
    }
}

#[test]
fn faulty_runs_are_deterministic() {
    let mut cfg = tiny_cfg(23, Algorithm::seafl(6, 3, Some(10)));
    cfg.faults.crash_prob = 0.25;
    cfg.faults.crash_window = (0.0, 30.0);
    cfg.faults.upload_drop_prob = 0.2;
    cfg.faults.corrupt_prob = 0.15;
    cfg.resilience.session_timeout = Some(25.0);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.timeouts, b.timeouts);
    assert_eq!(a.rejected_updates, b.rejected_updates);
    assert_eq!(a.trace.entries(), b.trace.entries());
}

// ---- the custom-policy seam ----

/// A caller-defined policy the [`Algorithm`] enum knows nothing about:
/// FedBuff aggregation, but every other arriving update is turned away at
/// admission. Exercises `run_with_policy` plus the engine's
/// [`Admission::Drop`] path (count, Drop trace, client straight back to the
/// idle pool) without a single engine edit.
struct DropEveryOther {
    seen: usize,
}

impl ServerPolicy for DropEveryOther {
    fn name(&self) -> &'static str {
        "drop-every-other"
    }

    fn concurrency(&self) -> usize {
        6
    }

    fn buffer_k(&self) -> usize {
        2
    }

    fn on_update_received(&mut self, _update: &ModelUpdate, _round: u64) -> Admission {
        self.seen += 1;
        if self.seen % 2 == 0 {
            Admission::Drop
        } else {
            Admission::Admit
        }
    }

    fn weights_for_buffer(
        &self,
        updates: &[ModelUpdate],
        _global: &[f32],
        _round: u64,
    ) -> Vec<f32> {
        vec![1.0 / updates.len() as f32; updates.len()]
    }

    fn mix_into_global(&self, global: &[f32], avg: &[f32]) -> Vec<f32> {
        seafl::core::mix(global, avg, 0.8)
    }
}

#[test]
fn custom_policy_admission_drops_are_counted_and_traced() {
    // The config's algorithm is only used for validation; the custom policy
    // decides everything else.
    let cfg = tiny_cfg(12, Algorithm::fedbuff(6, 2));
    let r = run_with_policy(&cfg, Box::new(DropEveryOther { seen: 0 }));
    assert_eq!(r.algorithm, "drop-every-other");
    assert_eq!(r.rounds, 30, "dropped admissions stalled the run");
    assert!(r.dropped_updates > 0, "no admission was ever refused");
    // Every second update was dropped (total counts both verdicts).
    assert_eq!(r.dropped_updates, r.total_updates / 2);
    // A dropped arrival leaves a Drop trace right after its Upload trace,
    // and the client goes back to the idle pool (ClientStart/Upload still
    // strictly alternate per client).
    let drops =
        r.trace.entries().iter().filter(|(_, ev)| matches!(ev, TraceEvent::Drop { .. })).count();
    assert_eq!(drops, r.dropped_updates);
    let mut outstanding = vec![0i64; cfg.num_clients];
    for (_, ev) in r.trace.entries() {
        match ev {
            TraceEvent::ClientStart { id, .. } => outstanding[id.index()] += 1,
            TraceEvent::Upload { id, .. } => outstanding[id.index()] -= 1,
            _ => {}
        }
        assert!(outstanding.iter().all(|&n| (0..=1).contains(&n)));
    }
}
