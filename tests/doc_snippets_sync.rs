//! The Rust code blocks in `README.md` and `OBSERVABILITY.md` are mirrored
//! verbatim into `examples/doc_snippets.rs`, which CI compiles — so a
//! documented API that stops existing breaks the build. This test is the
//! other half of the contract: every ```` ```rust ```` block in those
//! documents must still appear (contiguously, modulo indentation and blank
//! lines) in the harness, and the harness must not be empty.

use std::path::{Path, PathBuf};

fn repo_file(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(name)
}

/// One line, normalized for comparison: leading/trailing and internal runs
/// of whitespace collapse to single spaces, so indentation depth (markdown
/// at column 0, function bodies at column 4) never matters.
fn normalize(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Every fenced ```` ```rust ```` block in `markdown`, as normalized
/// non-empty lines.
fn rust_blocks(markdown: &str) -> Vec<Vec<String>> {
    let mut blocks = Vec::new();
    let mut current: Option<Vec<String>> = None;
    for line in markdown.lines() {
        let t = line.trim();
        match current.as_mut() {
            None => {
                if t == "```rust" {
                    current = Some(Vec::new());
                }
            }
            Some(block) => {
                if t == "```" {
                    blocks.push(current.take().unwrap());
                } else {
                    let n = normalize(line);
                    if !n.is_empty() {
                        block.push(n);
                    }
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```rust block");
    blocks
}

/// True when `needle` appears as a contiguous run inside `haystack`.
fn contains_run(haystack: &[String], needle: &[String]) -> bool {
    !needle.is_empty()
        && haystack.len() >= needle.len()
        && haystack.windows(needle.len()).any(|w| w == needle)
}

#[test]
fn every_markdown_rust_block_is_compile_checked() {
    let harness_path = repo_file("examples/doc_snippets.rs");
    let harness_src = std::fs::read_to_string(&harness_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", harness_path.display()));
    let harness: Vec<String> = harness_src
        .lines()
        .map(normalize)
        .filter(|l| !l.is_empty())
        .collect();

    for doc in ["README.md", "OBSERVABILITY.md"] {
        let path = repo_file(doc);
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let blocks = rust_blocks(&body);
        assert!(!blocks.is_empty(), "{doc}: expected at least one ```rust block");
        for (i, block) in blocks.iter().enumerate() {
            assert!(
                contains_run(&harness, block),
                "{doc}: rust block #{} is not mirrored in examples/doc_snippets.rs \
                 (update the harness or the document):\n{}",
                i + 1,
                block.join("\n")
            );
        }
    }
}

#[test]
fn extractor_handles_nested_fence_kinds() {
    let md = "\
prose
```sh
cargo test
```
```rust
let x = 1;

assert_eq!(x, 1);
```
```text
not code
```
";
    let blocks = rust_blocks(md);
    assert_eq!(blocks.len(), 1);
    assert_eq!(blocks[0], vec!["let x = 1;".to_string(), "assert_eq!(x, 1);".to_string()]);
    assert!(contains_run(
        &["a".into(), "let x = 1;".into(), "assert_eq!(x, 1);".into(), "b".into()],
        &blocks[0]
    ));
    assert!(!contains_run(&["let x = 1;".into()], &blocks[0]));
}
