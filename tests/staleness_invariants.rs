//! Protocol invariants around staleness, the buffer and partial training,
//! checked against full event traces.

use seafl::core::{run_experiment, Algorithm, ExperimentConfig};
use seafl::nn::ModelKind;
use seafl::sim::{FleetConfig, TraceEvent};
use std::collections::HashMap;

fn cfg(seed: u64, algorithm: Algorithm) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, algorithm);
    c.num_clients = 12;
    c.fleet = FleetConfig::pareto_fleet(12);
    c.train_per_class = 24;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    c.max_rounds = 30;
    c.stop_at_accuracy = None;
    c
}

/// Maximum staleness over all aggregated updates, reconstructed from the
/// trace (born_round of each upload vs. the round counter at the aggregate
/// event that consumed it).
fn max_aggregated_staleness(r: &seafl::core::RunResult) -> u64 {
    let mut pending: HashMap<usize, u64> = HashMap::new();
    let mut max_s = 0;
    for (_, ev) in r.trace.entries() {
        match ev {
            TraceEvent::Upload { id, born_round, .. } => {
                pending.insert(id.index(), *born_round);
            }
            TraceEvent::Aggregate { round, .. } => {
                let at = round - 1;
                for (_, born) in pending.drain() {
                    max_s = max_s.max(at.saturating_sub(born));
                }
            }
            _ => {}
        }
    }
    max_s
}

#[test]
fn wait_for_stale_enforces_beta() {
    for beta in [1u64, 2, 5] {
        let r = run_experiment(&cfg(1, Algorithm::seafl(8, 3, Some(beta))));
        let max_s = max_aggregated_staleness(&r);
        assert!(max_s <= beta, "beta={beta}: aggregated staleness reached {max_s}");
    }
}

#[test]
fn fedbuff_staleness_is_unbounded_relative_to_tight_seafl() {
    // Same workload: FedBuff (no limit) must admit strictly staler updates
    // than SEAFL with beta = 1.
    let r_buff = run_experiment(&cfg(2, Algorithm::fedbuff(8, 3)));
    let r_seafl = run_experiment(&cfg(2, Algorithm::seafl(8, 3, Some(1))));
    assert!(max_aggregated_staleness(&r_buff) > max_aggregated_staleness(&r_seafl));
}

#[test]
fn partial_updates_have_fewer_epochs_and_follow_notifications() {
    let c = cfg(3, Algorithm::seafl2(10, 3, 1));
    let r = run_experiment(&c);
    assert!(r.notifications > 0, "scenario produced no notifications");

    let mut notified: Vec<usize> = Vec::new();
    for (_, ev) in r.trace.entries() {
        match ev {
            TraceEvent::Notify { id } => notified.push(id.index()),
            TraceEvent::Upload { id, epochs, .. } => {
                assert!(*epochs >= 1 && *epochs <= c.local_epochs);
                if *epochs < c.local_epochs {
                    assert!(
                        notified.contains(&id.index()),
                        "partial upload from {id} without a notification"
                    );
                }
            }
            _ => {}
        }
    }
}

#[test]
fn every_aggregation_consumes_at_least_buffer_k() {
    let c = cfg(4, Algorithm::fedbuff(8, 3));
    let r = run_experiment(&c);
    for (_, ev) in r.trace.entries() {
        if let TraceEvent::Aggregate { num_updates, .. } = ev {
            assert!(*num_updates >= 3, "aggregated only {num_updates} updates");
        }
    }
}

#[test]
fn wait_policy_can_aggregate_more_than_k() {
    // With beta = 1 the server regularly waits for stale in-flight clients,
    // so some aggregations drain more than K updates.
    let r = run_experiment(&cfg(5, Algorithm::seafl(10, 3, Some(1))));
    let oversized = r
        .trace
        .entries()
        .iter()
        .filter(
            |(_, ev)| matches!(ev, TraceEvent::Aggregate { num_updates, .. } if *num_updates > 3),
        )
        .count();
    assert!(oversized > 0, "wait policy never overflowed the buffer");
}

#[test]
fn born_rounds_never_exceed_aggregation_round() {
    let r = run_experiment(&cfg(6, Algorithm::seafl(8, 3, Some(5))));
    let mut current_round = 0u64;
    for (_, ev) in r.trace.entries() {
        match ev {
            TraceEvent::Aggregate { round, .. } => current_round = *round,
            TraceEvent::Upload { born_round, .. } => {
                assert!(*born_round <= current_round, "update born in the future");
            }
            _ => {}
        }
    }
}

#[test]
fn trace_times_monotone() {
    let r = run_experiment(&cfg(7, Algorithm::seafl2(8, 3, 2)));
    let times: Vec<f64> = r.trace.entries().iter().map(|(t, _)| t.as_secs()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "trace out of order");
}
