//! Reproducibility: identical seeds give bitwise-identical runs; different
//! seeds differ; algorithms sharing a seed see identical data and fleets.

use seafl::core::{run_experiment, Algorithm, ExperimentConfig};
use seafl::nn::ModelKind;
use seafl::sim::FleetConfig;

fn cfg(seed: u64, algorithm: Algorithm) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, algorithm);
    c.num_clients = 10;
    c.fleet = FleetConfig::pareto_fleet(10);
    c.train_per_class = 24;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    c.max_rounds = 12;
    c.stop_at_accuracy = None;
    c
}

#[test]
fn identical_seed_identical_run_every_algorithm() {
    for alg in [
        Algorithm::seafl(5, 3, Some(5)),
        Algorithm::seafl2(5, 3, 2),
        Algorithm::fedbuff(5, 3),
        Algorithm::fedasync(5),
        Algorithm::FedAvg { clients_per_round: 4 },
    ] {
        let a = run_experiment(&cfg(77, alg));
        let b = run_experiment(&cfg(77, alg));
        assert_eq!(a.accuracy, b.accuracy, "{} accuracy series diverged", a.algorithm);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.total_updates, b.total_updates);
        assert_eq!(a.partial_updates, b.partial_updates);
        assert_eq!(a.sim_time_end, b.sim_time_end);
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_experiment(&cfg(1, Algorithm::seafl(5, 3, Some(5))));
    let b = run_experiment(&cfg(2, Algorithm::seafl(5, 3, Some(5))));
    assert_ne!(a.accuracy, b.accuracy);
}

#[test]
fn schedule_identical_across_weighting_rules() {
    // SEAFL(β=∞) and FedBuff share trigger policy and selection streams, so
    // under the same seed their *schedules* (rounds, update counts, final
    // sim time) must coincide even though the learned weights differ.
    let a = run_experiment(&cfg(5, Algorithm::seafl(5, 3, None)));
    let b = run_experiment(&cfg(5, Algorithm::fedbuff(5, 3)));
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.total_updates, b.total_updates);
    assert_eq!(a.sim_time_end, b.sim_time_end);
    // Evaluation instants coincide; accuracies may differ.
    let ta: Vec<f64> = a.accuracy.iter().map(|&(t, _)| t).collect();
    let tb: Vec<f64> = b.accuracy.iter().map(|&(t, _)| t).collect();
    assert_eq!(ta, tb);
}

#[test]
fn initial_evaluation_identical_across_algorithms() {
    // Same seed ⇒ same data + same initial model ⇒ same t=0 accuracy.
    let a = run_experiment(&cfg(9, Algorithm::fedbuff(5, 3)));
    let b = run_experiment(&cfg(9, Algorithm::fedasync(5)));
    let c = run_experiment(&cfg(9, Algorithm::FedAvg { clients_per_round: 4 }));
    assert_eq!(a.accuracy[0], b.accuracy[0]);
    assert_eq!(a.accuracy[0], c.accuracy[0]);
}
