//! The checkpoint/resume guarantee, end to end: a run killed mid-flight by
//! the seeded server-crash fault and resumed from its newest durable
//! snapshot must finish with the event trace and final model of an
//! uninterrupted run of the same experiment — bit for bit, for every
//! algorithm, with device faults active, at any thread count. Plus the
//! failure half of the contract: torn or bit-flipped snapshots are rejected
//! at load (falling back to the previous valid one), and state from a
//! different experiment is never restored.

use seafl::core::{
    resume_experiment, run_experiment, Algorithm, CheckpointError, ExperimentConfig, RunResult,
};
use seafl::nn::ModelKind;
use seafl::sim::{FleetConfig, TerminationReason};
use std::fs;
use std::path::PathBuf;

/// The crashing config: the parallel-determinism testbed plus device faults,
/// a probability-1 server crash at round 3–4, and every-round snapshots.
fn cfg(seed: u64, algorithm: Algorithm, threads: usize) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, algorithm);
    c.num_clients = 10;
    c.fleet = FleetConfig::pareto_fleet(10);
    c.train_per_class = 24;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    c.max_rounds = 10;
    c.stop_at_accuracy = None;
    c.threads = threads;
    c.faults.crash_prob = 0.15;
    c.faults.crash_window = (0.0, c.max_sim_time * 0.5);
    c.faults.upload_drop_prob = 0.1;
    c.resilience.session_timeout = Some(c.max_sim_time * 0.1);
    c.faults.server_crash_prob = 1.0;
    c.faults.server_crash_window = (3, 4);
    c.checkpoint_every = Some(1);
    c.keep_last = 2;
    c
}

/// The counterfactual "the host never died": identical in every draw (the
/// server-crash channel samples after all device schedules), no snapshots.
fn reference_cfg(seed: u64, algorithm: Algorithm, threads: usize) -> ExperimentConfig {
    let mut c = cfg(seed, algorithm, threads);
    c.faults.server_crash_prob = 0.0;
    c.faults.server_crash_window = (0, 0);
    c.checkpoint_every = None;
    c.keep_last = 2;
    c
}

/// A fresh per-case scratch directory under the OS temp dir.
fn tmp_dir(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seafl-ckpt-test-{}-{case}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every observable output of a run, compared bitwise (same contract as
/// tests/parallel_determinism.rs, plus the model digest).
fn assert_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.accuracy, b.accuracy, "{what}: accuracy curve diverged");
    assert_eq!(a.grad_norms, b.grad_norms, "{what}: grad-norm curve diverged");
    assert_eq!(a.rounds, b.rounds, "{what}: round count diverged");
    assert_eq!(a.total_updates, b.total_updates, "{what}: update count diverged");
    assert_eq!(a.partial_updates, b.partial_updates, "{what}: partial updates diverged");
    assert_eq!(a.dropped_updates, b.dropped_updates, "{what}: dropped updates diverged");
    assert_eq!(a.notifications, b.notifications, "{what}: notifications diverged");
    assert_eq!(a.crashes, b.crashes, "{what}: crash count diverged");
    assert_eq!(a.upload_failures, b.upload_failures, "{what}: upload failures diverged");
    assert_eq!(a.retries, b.retries, "{what}: retry count diverged");
    assert_eq!(a.timeouts, b.timeouts, "{what}: timeout count diverged");
    assert_eq!(a.quarantined, b.quarantined, "{what}: quarantine count diverged");
    assert_eq!(a.rejected_updates, b.rejected_updates, "{what}: rejections diverged");
    assert_eq!(a.superseded_uploads, b.superseded_uploads, "{what}: superseded diverged");
    assert_eq!(a.termination, b.termination, "{what}: termination reason diverged");
    assert_eq!(a.model_digest, b.model_digest, "{what}: final model diverged");
    assert_eq!(a.sim_time_end, b.sim_time_end, "{what}: end time diverged");
    assert_eq!(a.trace.entries(), b.trace.entries(), "{what}: event trace diverged");
}

fn all_algorithms() -> [Algorithm; 6] {
    [
        Algorithm::seafl(5, 3, Some(5)),
        Algorithm::seafl2(5, 3, 2),
        Algorithm::fedbuff(5, 3),
        Algorithm::fedasync(5),
        Algorithm::FedAvg { clients_per_round: 4 },
        // Stateful policy: its running staleness means ride the per-policy
        // checkpoint section, so this case proves that section round-trips.
        Algorithm::fedstale(5, 3),
    ]
}

/// The headline guarantee: crash + resume ≡ uninterrupted, for every
/// algorithm, faults on, sequential and parallel executors.
#[test]
fn crash_and_resume_is_bit_identical_for_every_algorithm() {
    for (i, alg) in all_algorithms().into_iter().enumerate() {
        for threads in [1usize, 4] {
            let dir = tmp_dir(&format!("main-{i}-t{threads}"));
            let mut crash = cfg(77, alg, threads);
            crash.checkpoint_dir = Some(dir.clone());

            let crashed = run_experiment(&crash);
            let reference = run_experiment(&reference_cfg(77, alg, threads));
            let what = format!("{} threads={threads}", reference.algorithm);
            assert_eq!(
                crashed.termination,
                TerminationReason::ServerCrash,
                "{what}: run did not die at the seeded crash round"
            );
            assert!(crashed.rounds < reference.rounds, "{what}: crash did not interrupt");

            let resumed = resume_experiment(&crash, &dir)
                .unwrap_or_else(|e| panic!("{what}: resume failed: {e}"));
            assert_identical(&resumed, &reference, &what);
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// Snapshots embed no executor state: a run checkpointed under `threads = 1`
/// resumes under `threads = 4` (and vice versa) with identical results.
#[test]
fn resume_across_thread_counts() {
    let alg = Algorithm::seafl(5, 3, Some(5));
    let reference = run_experiment(&reference_cfg(31, alg, 1));
    for (from, to) in [(1usize, 4usize), (4, 1)] {
        let dir = tmp_dir(&format!("xthread-{from}-{to}"));
        let mut crash = cfg(31, alg, from);
        crash.checkpoint_dir = Some(dir.clone());
        let crashed = run_experiment(&crash);
        assert_eq!(crashed.termination, TerminationReason::ServerCrash);

        let resume_cfg = cfg(31, alg, to);
        let resumed = resume_experiment(&resume_cfg, &dir)
            .unwrap_or_else(|e| panic!("cross-thread {from}->{to} resume failed: {e}"));
        assert_identical(&resumed, &reference, &format!("threads {from}->{to}"));
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Return the retained snapshot files, oldest first.
fn snapshots(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "seafl"))
        .collect();
    files.sort();
    files
}

/// A bit-flipped newest snapshot fails its checksum and the loader falls
/// back to the previous valid one — the resumed run is still bit-identical.
#[test]
fn corrupt_newest_checkpoint_falls_back_to_previous() {
    let alg = Algorithm::seafl(5, 3, Some(5));
    let dir = tmp_dir("bitflip");
    let mut crash = cfg(19, alg, 1);
    crash.checkpoint_dir = Some(dir.clone());
    let crashed = run_experiment(&crash);
    assert_eq!(crashed.termination, TerminationReason::ServerCrash);

    let files = snapshots(&dir);
    assert!(files.len() >= 2, "keep_last=2 should retain two snapshots, got {}", files.len());
    let newest = files.last().unwrap();
    let mut bytes = fs::read(newest).expect("read newest snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(newest, &bytes).expect("write corrupted snapshot");

    let resumed = resume_experiment(&crash, &dir).expect("fallback resume failed");
    let reference = run_experiment(&reference_cfg(19, alg, 1));
    assert_identical(&resumed, &reference, "fallback after bit flip");
    let _ = fs::remove_dir_all(&dir);
}

/// When every snapshot is torn, resume errors cleanly — no panic, no silent
/// partial restore.
#[test]
fn all_snapshots_torn_is_a_clean_error() {
    let alg = Algorithm::fedbuff(5, 3);
    let dir = tmp_dir("torn");
    let mut crash = cfg(23, alg, 1);
    crash.checkpoint_dir = Some(dir.clone());
    let crashed = run_experiment(&crash);
    assert_eq!(crashed.termination, TerminationReason::ServerCrash);

    for f in snapshots(&dir) {
        let bytes = fs::read(&f).expect("read snapshot");
        fs::write(&f, &bytes[..bytes.len() / 2]).expect("truncate snapshot");
    }
    let err = resume_experiment(&crash, &dir).expect_err("torn snapshots must not restore");
    assert!(
        matches!(err, CheckpointError::NoValidCheckpoint { .. }),
        "expected NoValidCheckpoint, got: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Snapshots from a different experiment (different config hash) are
/// rejected, not silently restored into the wrong run.
#[test]
fn config_mismatch_is_rejected() {
    let alg = Algorithm::seafl(5, 3, Some(5));
    let dir = tmp_dir("cfgdrift");
    let mut crash = cfg(55, alg, 1);
    crash.checkpoint_dir = Some(dir.clone());
    let crashed = run_experiment(&crash);
    assert_eq!(crashed.termination, TerminationReason::ServerCrash);

    let mut drifted = cfg(56, alg, 1); // different seed ⇒ different experiment
    drifted.checkpoint_dir = Some(dir.clone());
    let err = resume_experiment(&drifted, &dir).expect_err("drifted config must not restore");
    assert!(
        matches!(err, CheckpointError::NoValidCheckpoint { .. }),
        "expected NoValidCheckpoint, got: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Resuming an empty / missing directory is a clean error too.
#[test]
fn empty_directory_is_a_clean_error() {
    let dir = tmp_dir("empty");
    fs::create_dir_all(&dir).expect("create empty dir");
    let c = cfg(1, Algorithm::seafl(5, 3, Some(5)), 1);
    let err = resume_experiment(&c, &dir).expect_err("nothing to resume from");
    assert!(
        matches!(err, CheckpointError::NoValidCheckpoint { .. }),
        "expected NoValidCheckpoint, got: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}
