//! Observability must be a pure measurement layer: turning it on (summary
//! or full-JSONL), or changing the thread count underneath it, must never
//! change a single bit of a run's results — and the JSONL stream itself
//! must be byte-identical across same-seed reruns and thread counts.

use seafl::core::{run_experiment, Algorithm, ExperimentConfig, ObsConfig, ObsMode};
use seafl::nn::ModelKind;
use seafl::sim::FleetConfig;
use std::path::PathBuf;

fn cfg(seed: u64, algorithm: Algorithm, threads: usize) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(seed, algorithm);
    c.num_clients = 10;
    c.fleet = FleetConfig::pareto_fleet(10);
    c.train_per_class = 24;
    c.test_per_class = 8;
    c.model = ModelKind::Mlp { in_features: 28 * 28, hidden: 16, num_classes: 10 };
    c.max_rounds = 8;
    c.stop_at_accuracy = None;
    c.threads = threads;
    c
}

fn tmp_jsonl(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("seafl_obs_test_{}_{tag}.jsonl", std::process::id()))
}

#[test]
fn obs_mode_never_changes_results() {
    for alg in [
        Algorithm::seafl(5, 3, Some(5)),
        Algorithm::seafl2(5, 3, 2),
        Algorithm::fedbuff(5, 3),
        Algorithm::fedasync(5),
        Algorithm::FedAvg { clients_per_round: 4 },
        Algorithm::fedstale(5, 3),
    ] {
        let mut off = cfg(31, alg, 1);
        off.obs.mode = ObsMode::Off;
        let baseline = run_experiment(&off);

        let summary = run_experiment(&cfg(31, alg, 1)); // default: Summary

        let path = tmp_jsonl(baseline.algorithm);
        let mut full = cfg(31, alg, 1);
        full.obs = ObsConfig::full(&path);
        let streamed = run_experiment(&full);
        std::fs::remove_file(&path).ok();

        for (mode, run) in [("summary", &summary), ("full", &streamed)] {
            assert_eq!(
                baseline.model_digest, run.model_digest,
                "{}: obs {mode} changed the final model",
                baseline.algorithm
            );
            assert_eq!(
                baseline.trace.digest(),
                run.trace.digest(),
                "{}: obs {mode} changed the event trace",
                baseline.algorithm
            );
            assert_eq!(baseline.accuracy, run.accuracy, "{}: obs {mode}", baseline.algorithm);
        }
        // Off really is off; the other modes measured the same run.
        assert!(!baseline.obs.enabled);
        assert!(summary.obs.enabled);
        assert_eq!(summary.obs.registry_digest, streamed.obs.registry_digest);
        assert_eq!(summary.obs.counters["aggregations"], summary.rounds);
    }
}

#[test]
fn obs_registry_and_jsonl_identical_across_threads() {
    for alg in [Algorithm::seafl(5, 3, Some(5)), Algorithm::fedbuff(5, 3)] {
        let mut bytes = Vec::new();
        let mut digests = Vec::new();
        for threads in [1usize, 4] {
            let path = tmp_jsonl(&format!("threads{threads}"));
            let mut c = cfg(47, alg, threads);
            c.obs = ObsConfig::full(&path);
            let run = run_experiment(&c);
            digests.push((run.model_digest, run.obs.registry_digest.clone()));
            bytes.push(std::fs::read(&path).expect("stream written"));
            std::fs::remove_file(&path).ok();
        }
        assert_eq!(digests[0], digests[1], "thread count leaked into obs digests");
        assert_eq!(
            bytes[0], bytes[1],
            "JSONL stream differs between threads=1 and threads=4"
        );
        assert!(!bytes[0].is_empty());
    }
}

#[test]
fn jsonl_byte_identical_across_reruns() {
    let run = |tag: &str| {
        let path = tmp_jsonl(tag);
        let mut c = cfg(59, Algorithm::seafl2(5, 3, 2), 2);
        c.obs = ObsConfig::full(&path);
        run_experiment(&c);
        let body = std::fs::read(&path).expect("stream written");
        std::fs::remove_file(&path).ok();
        body
    };
    let a = run("rerun_a");
    let b = run("rerun_b");
    assert_eq!(a, b, "same-seed reruns produced different JSONL bytes");
    // Sanity: the stream opens with the meta record and ends with summary.
    let text = String::from_utf8(a).expect("stream is UTF-8");
    let first = text.lines().next().unwrap();
    let last = text.lines().last().unwrap();
    assert!(first.starts_with("{\"kind\":\"meta\""), "{first}");
    assert!(last.starts_with("{\"kind\":\"summary\""), "{last}");
}
