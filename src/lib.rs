//! # seafl
//!
//! Facade crate for the SEAFL workspace — a from-scratch Rust reproduction
//! of *"SEAFL: Enhancing Efficiency in Semi-Asynchronous Federated Learning
//! through Adaptive Aggregation and Selective Training"* (IPDPS 2025).
//!
//! The workspace layers, re-exported here:
//!
//! * [`tensor`] — dense `f32` tensors, rayon-parallel GEMM, im2col
//!   convolution, pooling.
//! * [`nn`] — layers with explicit backward passes, the paper's model zoo
//!   (LeNet-5, ResNet-18, VGG-16, width-scalable), SGD.
//! * [`data`] — synthetic federated datasets, Dirichlet/IID/shard/quantity
//!   partitioners, Zipf/Pareto workload samplers.
//! * [`sim`] — deterministic discrete-event simulation of heterogeneous
//!   device fleets (virtual clock, event queue, device/network models).
//! * [`core`] — the SEAFL framework itself: adaptive staleness- and
//!   importance-weighted aggregation (paper Eqs. 4–8), the SEAFL² partial
//!   training extension, and the FedAvg/FedAsync/FedBuff baselines.
//!
//! ## Quickstart
//!
//! ```no_run
//! use seafl::core::{run_experiment, Algorithm, ExperimentConfig};
//!
//! // 40 heterogeneous devices, SEAFL server: buffer K = 5, staleness limit 10.
//! let config = ExperimentConfig::quick(1, Algorithm::seafl(10, 5, Some(10)));
//! let result = run_experiment(&config);
//! println!("time to 80%: {:?}", result.time_to_accuracy(0.80));
//! ```

pub use seafl_core as core;
pub use seafl_data as data;
pub use seafl_nn as nn;
pub use seafl_sim as sim;
pub use seafl_tensor as tensor;
